//! Per-query tracing and per-operator profiling.
//!
//! QPipe's operator-centric argument is that an engine organised around
//! µEngines can show *where* work happens and *what* gets shared. This
//! module supplies the per-query half of that story, complementing the
//! engine-global counters in [`crate::metrics`]:
//!
//! - [`QueryTrace`] — a bounded, Arc-shared ring buffer of typed
//!   [`TraceEvent`]s with microsecond timestamps relative to submission.
//!   One per query, allocated only when `ExecConfig::tracing` is on.
//! - [`OpProbe`] — a bundle of relaxed atomics one per plan operator,
//!   incremented from the hot path without locking. Snapshots fold into
//!   an [`OpStats`].
//! - [`ProbeNode`] / [`QueryProfile`] — a tree of probes mirroring the
//!   `PlanNode` shape, and its plain-data snapshot returned by
//!   `QueryHandle::profile()`.
//!
//! When tracing is off every probe/trace handle is `None`, so the hot
//! path pays a branch on an `Option` and nothing else: no allocation,
//! no atomics, no lock traffic per batch.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default per-query event capacity. Past this the ring drops the
/// oldest events and counts them in [`QueryTrace::dropped`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// One typed event in a query's journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The query entered the admission queue.
    Enqueued,
    /// Admission granted after `waited_us` in the queue.
    Admitted { waited_us: u64 },
    /// A packet for operator `op` was handed to its µEngine.
    PacketDispatched { op: &'static str },
    /// An operator drained its inputs and closed its output.
    OperatorFinished {
        op: &'static str,
        rows: u64,
        batches: u64,
        busy_ns: u64,
        pipe_wait_ns: u64,
        io_wait_ns: u64,
    },
    /// This query attached as a satellite to an in-flight host on `engine`.
    OspAttach { engine: &'static str },
    /// A satellite detached (normally, at completion) having received
    /// `pages_from_host` pages without touching disk.
    OspDetach { engine: &'static str, pages_from_host: u64 },
    /// A morsel of `pages` pages was fanned out to the task pool.
    MorselDispatched { pages: u64 },
    /// A bufferpool read needed `retries` extra attempts (transient I/O
    /// faults, checksum rejects).
    BufferpoolRetry { retries: u64 },
    /// The memory governor denied an operator's working-set lease, forcing
    /// a partitioned/spill fallback.
    MemDenied { op: &'static str },
    /// The query failed; `error` is the rendered `QError`.
    QueryFailed { error: String },
}

/// A [`TraceEvent`] stamped with microseconds since query submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    pub at_us: u64,
    pub event: TraceEvent,
}

#[derive(Debug)]
struct TraceRing {
    events: VecDeque<TimedEvent>,
    dropped: u64,
    cap: usize,
}

/// Per-query event journal: a bounded ring of [`TimedEvent`]s behind a
/// cheap mutex. Shared by `Arc` between the handle and every packet.
#[derive(Debug)]
pub struct QueryTrace {
    origin: Instant,
    inner: Mutex<TraceRing>,
}

impl QueryTrace {
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        QueryTrace {
            origin: Instant::now(),
            inner: Mutex::new(TraceRing {
                events: VecDeque::with_capacity(cap.min(64)),
                dropped: 0,
                cap,
            }),
        }
    }

    /// Append an event stamped with the current offset from submission.
    pub fn push(&self, event: TraceEvent) {
        let at_us = self.origin.elapsed().as_micros() as u64;
        let mut st = self.inner.lock();
        if st.events.len() >= st.cap {
            st.events.pop_front();
            st.dropped += 1;
        }
        st.events.push_back(TimedEvent { at_us, event });
    }

    /// Snapshot the journal in arrival order.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the journal as a human-readable dump, one event per line.
    pub fn render(&self) -> String {
        let (events, dropped) = {
            let st = self.inner.lock();
            (st.events.iter().cloned().collect::<Vec<_>>(), st.dropped)
        };
        let mut out = String::new();
        if dropped > 0 {
            let _ = writeln!(out, "  ... {dropped} earlier event(s) dropped by ring bound ...");
        }
        for ev in &events {
            let _ = writeln!(out, "  [{:>10} us] {:?}", ev.at_us, ev.event);
        }
        out
    }
}

impl Default for QueryTrace {
    fn default() -> Self {
        QueryTrace::new(DEFAULT_TRACE_CAPACITY)
    }
}

/// Hot-path counters for one plan operator. All relaxed atomics: writers
/// never synchronise with each other, readers snapshot after the fact.
#[derive(Debug, Default)]
pub struct OpProbe {
    rows: AtomicU64,
    batches: AtomicU64,
    total_ns: AtomicU64,
    pipe_wait_ns: AtomicU64,
    io_wait_ns: AtomicU64,
    mem_denied: AtomicU64,
    pages_from_host: AtomicU64,
    pages_from_disk: AtomicU64,
}

impl OpProbe {
    pub fn add_rows(&self, n: u64) {
        self.rows.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_batches(&self, n: u64) {
        self.batches.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_total_ns(&self, ns: u64) {
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn add_pipe_wait_ns(&self, ns: u64) {
        self.pipe_wait_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn add_io_wait_ns(&self, ns: u64) {
        self.io_wait_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn add_mem_denied(&self) {
        self.mem_denied.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_pages_from_host(&self, n: u64) {
        self.pages_from_host.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_pages_from_disk(&self, n: u64) {
        self.pages_from_disk.fetch_add(n, Ordering::Relaxed);
    }

    /// Fold the counters into a plain snapshot. Busy time is derived:
    /// total wall-clock inside the operator minus time provably spent
    /// blocked on an input pipe or a page fetch.
    pub fn stats(&self) -> OpStats {
        let total_ns = self.total_ns.load(Ordering::Relaxed);
        let pipe_wait_ns = self.pipe_wait_ns.load(Ordering::Relaxed);
        let io_wait_ns = self.io_wait_ns.load(Ordering::Relaxed);
        OpStats {
            rows: self.rows.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            busy_ns: total_ns.saturating_sub(pipe_wait_ns).saturating_sub(io_wait_ns),
            pipe_wait_ns,
            io_wait_ns,
            mem_denied: self.mem_denied.load(Ordering::Relaxed),
            pages_from_host: self.pages_from_host.load(Ordering::Relaxed),
            pages_from_disk: self.pages_from_disk.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of one operator's probe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    pub rows: u64,
    pub batches: u64,
    pub busy_ns: u64,
    pub pipe_wait_ns: u64,
    pub io_wait_ns: u64,
    pub mem_denied: u64,
    pub pages_from_host: u64,
    pub pages_from_disk: u64,
}

/// Live probe tree mirroring the `PlanNode` shape. Built by the engine at
/// submit time when tracing is on; each packet carries the `Arc<OpProbe>`
/// of its own operator.
#[derive(Debug, Clone)]
pub struct ProbeNode {
    pub op: &'static str,
    pub probe: Arc<OpProbe>,
    pub children: Vec<ProbeNode>,
}

impl ProbeNode {
    pub fn new(op: &'static str, children: Vec<ProbeNode>) -> Self {
        ProbeNode { op, probe: Arc::new(OpProbe::default()), children }
    }

    /// Snapshot the whole tree into a [`QueryProfile`].
    pub fn snapshot(&self) -> QueryProfile {
        QueryProfile {
            op: self.op,
            stats: self.probe.stats(),
            children: self.children.iter().map(ProbeNode::snapshot).collect(),
        }
    }
}

/// Immutable per-operator profile tree returned by `QueryHandle::profile()`
/// and rendered by `PlanNode::explain_analyze`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryProfile {
    pub op: &'static str,
    pub stats: OpStats,
    pub children: Vec<QueryProfile>,
}

impl QueryProfile {
    /// Sum of `rows` over every operator in the tree.
    pub fn total_rows(&self) -> u64 {
        self.stats.rows + self.children.iter().map(QueryProfile::total_rows).sum::<u64>()
    }

    /// Sum of `pages_from_host` over every operator in the tree.
    pub fn total_pages_from_host(&self) -> u64 {
        self.stats.pages_from_host
            + self.children.iter().map(QueryProfile::total_pages_from_host).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ring_bounds_and_counts_drops() {
        let tr = QueryTrace::new(3);
        for i in 0..5 {
            tr.push(TraceEvent::MorselDispatched { pages: i });
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        let evs = tr.events();
        assert_eq!(evs[0].event, TraceEvent::MorselDispatched { pages: 2 });
        assert_eq!(evs[2].event, TraceEvent::MorselDispatched { pages: 4 });
    }

    #[test]
    fn timestamps_are_monotonic() {
        let tr = QueryTrace::new(16);
        tr.push(TraceEvent::Enqueued);
        std::thread::sleep(Duration::from_millis(2));
        tr.push(TraceEvent::Admitted { waited_us: 7 });
        let evs = tr.events();
        assert!(evs[1].at_us >= evs[0].at_us);
        assert!(evs[1].at_us >= 1_000, "second event should be >= 1ms after origin");
    }

    #[test]
    fn render_includes_events_and_drop_note() {
        let tr = QueryTrace::new(1);
        tr.push(TraceEvent::Enqueued);
        tr.push(TraceEvent::QueryFailed { error: "boom".into() });
        let text = tr.render();
        assert!(text.contains("1 earlier event(s) dropped"));
        assert!(text.contains("QueryFailed"));
        assert!(text.contains("boom"));
    }

    #[test]
    fn probe_busy_is_total_minus_waits() {
        let p = OpProbe::default();
        p.add_rows(10);
        p.add_batches(2);
        p.add_total_ns(1_000);
        p.add_pipe_wait_ns(300);
        p.add_io_wait_ns(200);
        p.add_mem_denied();
        let s = p.stats();
        assert_eq!(s.rows, 10);
        assert_eq!(s.batches, 2);
        assert_eq!(s.busy_ns, 500);
        assert_eq!(s.mem_denied, 1);
    }

    #[test]
    fn probe_busy_saturates_when_waits_exceed_total() {
        let p = OpProbe::default();
        p.add_total_ns(100);
        p.add_pipe_wait_ns(400);
        assert_eq!(p.stats().busy_ns, 0);
    }

    #[test]
    fn probe_tree_snapshots_and_sums() {
        let leaf = ProbeNode::new("scan", vec![]);
        leaf.probe.add_rows(100);
        leaf.probe.add_pages_from_host(4);
        let root = ProbeNode::new("agg", vec![leaf]);
        root.probe.add_rows(1);
        let prof = root.snapshot();
        assert_eq!(prof.op, "agg");
        assert_eq!(prof.children[0].op, "scan");
        assert_eq!(prof.total_rows(), 101);
        assert_eq!(prof.total_pages_from_host(), 4);
    }
}
