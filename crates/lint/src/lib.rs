//! `qpipe-lint` — workspace-aware static analysis that turns QPipe's
//! concurrency and containment *conventions* into build-time guarantees.
//!
//! The staged engine runs many µEngines, a shared circular scanner, an
//! admission sweeper, and fixed worker pools against shared mutable state.
//! The failure-containment contract ("every query settles; no failure is
//! ever passed off as a complete result") rests on conventions — panics only
//! inside `catch_unwind` boundaries, threads only via `WorkerPool`, locks
//! never held across blocking pipe calls. This crate enforces them with
//! `cargo`, before they become flaky chaos-smoke failures: a lightweight
//! Rust-source lexer (same recursive-descent discipline as the planner's SQL
//! lexer — no external deps, works offline) feeds a rule engine that walks
//! every `crates/*/src/**/*.rs` file and emits `file:line` diagnostics,
//! exiting nonzero on any non-baselined violation.
//!
//! # Rule catalog
//!
//! **R1 — panic-freedom** (`lint:allow(R1)` / `lint:allow(panic)`).
//! No `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, or
//! `unimplemented!` in non-`#[cfg(test)]` code of the engine crates
//! (`common`, `storage`, `exec`, `core`). A panic that escapes a
//! `catch_unwind` boundary kills a worker silently; one that is caught still
//! costs a poisoned packet that *should* have been a typed `QError`.
//! Historical sites are ratcheted by the checked-in baseline
//! (`lint-baseline.txt`) — it may only shrink (see [`baseline`]).
//!
//! **R2 — thread hygiene** (`lint:allow(R2)` / `lint:allow(thread)`).
//! `thread::spawn` / `thread::Builder` are permitted only in the explicit
//! allowlist — `pool.rs` (the `WorkerPool` itself), the `admit.rs` sweeper,
//! the `scan.rs` scanner, and `host.rs` service threads — so new concurrency
//! must route through `WorkerPool`, inheriting its `catch_unwind`
//! containment, abandon guards, and busy accounting. Long-lived service
//! threads elsewhere carry inline waivers naming their join story.
//!
//! **R3 — lock discipline** (`lint:allow(R3)` / `lint:allow(lock)`).
//! Two checks. (a) No blocking call — `.send(`, `.recv(`, `.wait(` — while a
//! `let`-bound `.lock()`/`.try_lock()` guard is live in scope: a full pipe
//! there stalls every other holder of the mutex, the exact shape PR 8's
//! starvation breaker exists to mitigate. `.wait(&mut g)` where `g` *is* the
//! held guard is the condvar protocol (the lock is released while waiting)
//! and is exempt. (b) Nested lock acquisitions must not *invert* the
//! declared hierarchy `admit (1) → engine group (2) → pipe (3)`. An
//! acquisition's rank comes from the last layer-naming identifier in its
//! receiver chain (`…ticket…` → 1, `…group/host/scan…` → 2, `…pipe…` → 3),
//! falling back to the acquiring file's own rank (`admit.rs`;
//! `scan.rs`/`host.rs`; `pipe.rs`); same-rank nesting (e.g. admission
//! controller state → ticket state) is the owning layer's internal
//! protocol and is not flagged.
//! The tracker is lexical (single file, `let`-bound guards, `drop(g)`
//! releases): cross-function holds and `if let` guards are out of scope —
//! it is a tripwire for the common regression, not a proof.
//!
//! **R4 — metrics integrity** (`lint:allow(R4)` / `lint:allow(metrics)`).
//! Every `AtomicU64` counter in `qpipe_common::metrics::MetricsInner` must
//! (a) have a mutator method in `metrics.rs`, (b) have that mutator called
//! somewhere *outside* `metrics.rs`, and (c) be surfaced as a field of
//! `MetricsSnapshot`. A dead counter reads as "nothing happened" on every
//! dashboard; an unreported one is write-only. Either fails the build.
//! `Histogram` fields are held to the same contract: a `record_*` method in
//! `metrics.rs` that calls `.record(`, an external caller of that method,
//! and a `HistogramSummary` percentile field in `MetricsSnapshot` — a plain
//! integer snapshot field does not count, since it cannot carry p50/p95/p99.
//!
//! # Waivers
//!
//! ```text
//! // lint:allow(R1): poisoned-lock recovery is impossible here; see #42
//! ```
//!
//! A waiver suppresses findings of its rule on its own line (trailing
//! comment) or the line directly below (comment above). The reason is
//! mandatory — a waiver without one is itself a violation.
//!
//! # Baseline ratchet
//!
//! `lint-baseline.txt` at the workspace root records pre-existing violation
//! *counts* per (rule, file). Plain runs and `--check-baseline` fail when
//! any count grows; `--check-baseline` (the CI mode) also fails when a count
//! shrank without the file being updated, so every fix is locked in:
//!
//! ```text
//! cargo run -p qpipe-lint                      # lint, fail on growth
//! cargo run -p qpipe-lint -- --check-baseline  # CI: growth AND stale both fail
//! cargo run -p qpipe-lint -- --update-baseline # re-record after fixing sites
//! ```

pub mod baseline;
pub mod lexer;
pub mod rules;

pub use baseline::Baseline;
pub use rules::{run, Config, Finding, Rule, SourceFile};

use std::path::{Path, PathBuf};

/// Collect every `crates/*/src/**/*.rs` file under `root` (sorted, paths
/// repo-relative with forward slashes). Shims and `target/` are not under
/// `crates/` and are naturally excluded.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk_rs(&src, &mut paths)?;
        }
    }
    paths.sort();
    let mut out = Vec::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.push(SourceFile { path: rel, src: std::fs::read_to_string(&p)? });
    }
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Locate the workspace root: the nearest ancestor of `start` containing
/// both `Cargo.toml` and a `crates/` directory.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
