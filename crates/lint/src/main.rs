//! The `qpipe-lint` binary: lint the workspace against the ratchet baseline.
//!
//! ```text
//! qpipe-lint [--root <dir>] [--baseline <file>] [--check-baseline]
//!            [--update-baseline] [--all]
//! ```
//!
//! Exit codes: 0 clean, 1 violations (or a stale baseline in
//! `--check-baseline` mode), 2 usage / I/O error.

use qpipe_lint::{collect_sources, find_root, Baseline, Config};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    check_baseline: bool,
    update_baseline: bool,
    all: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        baseline: None,
        check_baseline: false,
        update_baseline: false,
        all: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = Some(it.next().ok_or("--root needs a value")?.into()),
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a value")?.into())
            }
            "--check-baseline" => args.check_baseline = true,
            "--update-baseline" => args.update_baseline = true,
            "--all" => args.all = true,
            "--help" | "-h" => {
                println!(
                    "qpipe-lint: enforce QPipe's concurrency & containment conventions\n\
                     \n\
                     USAGE: qpipe-lint [--root <dir>] [--baseline <file>]\n\
                     \x20                [--check-baseline] [--update-baseline] [--all]\n\
                     \n\
                     Default run fails on any finding beyond the ratchet baseline.\n\
                     --check-baseline   CI mode: ALSO fail when the baseline is stale\n\
                     \x20                  (a recorded count exceeds reality — shrink it)\n\
                     --update-baseline  re-record current findings as the new baseline\n\
                     --all              print every finding, baselined ones included\n\
                     \n\
                     Waive a single finding with `// lint:allow(rule): reason` on the\n\
                     same line or the line above (rules: R1|panic, R2|thread, R3|lock,\n\
                     R4|metrics). The reason is mandatory."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("qpipe-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match args
        .root
        .clone()
        .or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d)))
    {
        Some(r) => r,
        None => {
            eprintln!("qpipe-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };
    let baseline_path = args.baseline.clone().unwrap_or_else(|| root.join("lint-baseline.txt"));

    let files = match collect_sources(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("qpipe-lint: reading sources under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let cfg = Config::default();
    let findings = qpipe_lint::run(&files, &cfg);

    if args.update_baseline {
        let text = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("qpipe-lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "qpipe-lint: baseline updated — {} finding(s) across {} file(s) recorded in {}",
            findings.len(),
            findings.iter().map(|f| &f.path).collect::<std::collections::BTreeSet<_>>().len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("qpipe-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(), // no baseline: everything must be clean
    };

    if args.all {
        for f in &findings {
            println!("{f}");
        }
    }

    let (violations, stale) = baseline.check(&findings);
    for v in &violations {
        println!("{v}");
    }
    let stale_fails = args.check_baseline && !stale.is_empty();
    if args.check_baseline {
        for s in &stale {
            println!("qpipe-lint: stale: {s}");
        }
    }
    println!(
        "qpipe-lint: {} file(s), {} finding(s) total, {} beyond baseline (ratchet height {})",
        files.len(),
        findings.len(),
        violations.len(),
        baseline.total(),
    );
    if violations.is_empty() && !stale_fails {
        println!("qpipe-lint: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
