//! A lightweight Rust-source lexer.
//!
//! Same recursive-descent discipline as `crates/planner`'s SQL lexer: a
//! single forward pass over the bytes, no external dependencies, works
//! offline. The rules don't need a full parse — they pattern-match short
//! token sequences (`. unwrap ( )`, `thread :: spawn`, `let g = … . lock ( )`)
//! — so the lexer's job is to produce an accurate token stream with line
//! numbers while *correctly skipping* everything that could fake a match:
//! string literals (plain, raw, byte), char literals vs. lifetimes, line
//! comments, and nested block comments. Comments are kept (with their line)
//! because `// lint:allow(rule): reason` waivers live there.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unwrap`, `let`, `thread`, …).
    Ident(String),
    /// Single punctuation byte (`.`, `:`, `!`, `{`, …). Multi-byte operators
    /// arrive as consecutive tokens (`::` is `:` `:`).
    Punct(u8),
    /// Any literal (string, char, number). Contents are irrelevant to the
    /// rules; only its presence and line matter.
    Lit,
    /// A lifetime (`'a`). Distinguished from char literals so `'a'` in a
    /// pattern never desynchronizes the stream.
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A comment (line or block) with the 1-based line it starts on and its
/// text (delimiters stripped, block comments kept verbatim inside).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Lexer output: the token stream and the comments, both line-annotated.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens + comments. Never fails: unterminated literals or
/// comments simply end at EOF (the rules tolerate a truncated tail — a
/// malformed file fails `cargo build` long before it reaches the linter).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments
                    .push(Comment { line, text: String::from_utf8_lossy(&b[start..i]).into() });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: String::from_utf8_lossy(&b[start..end]).into(),
                });
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
                out.tokens.push(Token { tok: Tok::Lit, line });
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let start_line = line;
                i = skip_raw_or_byte_string(b, i, &mut line);
                out.tokens.push(Token { tok: Tok::Lit, line: start_line });
            }
            b'\'' => {
                // Lifetime (`'a` not closed by `'`) vs char literal (`'x'`).
                let is_lifetime =
                    b.get(i + 1).is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
                        && b.get(i + 2) != Some(&b'\'');
                if is_lifetime {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.tokens.push(Token { tok: Tok::Lifetime, line });
                } else {
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\\' {
                            i += 1;
                        }
                        if i < b.len() && b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1; // closing quote
                    out.tokens.push(Token { tok: Tok::Lit, line });
                }
            }
            c if c.is_ascii_digit() => {
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // Fractional part — but not `0..10`'s range operator.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                out.tokens.push(Token { tok: Tok::Lit, line });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let ident = String::from_utf8_lossy(&b[start..i]).into_owned();
                out.tokens.push(Token { tok: Tok::Ident(ident), line });
            }
            c => {
                out.tokens.push(Token { tok: Tok::Punct(c), line });
                i += 1;
            }
        }
    }
    out
}

/// Is `b[i]` the start of a raw string (`r"`, `r#`), byte string (`b"`), or
/// raw byte string (`br"`, `br#`)? A plain identifier starting with r/b
/// (e.g. `rows`) is not.
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    let mut j = if rest.starts_with(b"br") {
        i + 2
    } else if rest.starts_with(b"r") || rest.starts_with(b"b") {
        i + 1
    } else {
        return false;
    };
    // Zero or more hashes, then a quote. `r#ident` (raw identifier) has no
    // quote after the hashes and `break`/`rows` have neither — not strings.
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

/// Skip a plain `"…"` string starting at `b[i] == b'"'`; returns the index
/// past the closing quote, bumping `line` across embedded newlines.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() && b[i] != b'"' {
        if b[i] == b'\\' {
            i += 1;
        }
        if i < b.len() && b[i] == b'\n' {
            *line += 1;
        }
        i += 1;
    }
    i + 1
}

/// Skip `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##` starting at the `r`/`b`.
fn skip_raw_or_byte_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    // Consume the r/b/br prefix.
    while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
        i += 1;
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return i; // not actually a string; resynchronize
    }
    if hashes == 0 && b[i - 1] == b'b' {
        // b"…" has escapes like a plain string.
        return skip_string(b, i, line);
    }
    i += 1;
    // Raw: ends at `"` followed by `hashes` hashes; no escapes.
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
        }
        if b[i] == b'"' && b[i + 1..].iter().take(hashes).filter(|c| **c == b'#').count() == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Is this token the punctuation byte `c`?
    pub fn is_punct(&self, c: u8) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// Is this token the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            let x = "not .unwrap() here"; // real comment .expect(
            /* block panic! */
            let y = r#"raw "quoted" .unwrap()"#;
            y.unwrap();
        "##;
        let ids = idents(src);
        // Only one `unwrap` survives (the real call on the last line).
        assert_eq!(ids.iter().filter(|s| *s == "unwrap").count(), 1);
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains(".expect("));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let l = lex(src);
        let lifetimes = l.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let lits = l.tokens.iter().filter(|t| t.tok == Tok::Lit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(lits, 1);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n\"two\nline\"\nc";
        let l = lex(src);
        let c = l.tokens.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(c.line, 5);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ real";
        let l = lex(src);
        assert_eq!(l.tokens.len(), 1);
        assert!(l.tokens[0].is_ident("real"));
    }

    #[test]
    fn numbers_with_fractions_and_ranges() {
        let src = "1.5 0..10 2e3";
        let l = lex(src);
        let puncts = l.tokens.iter().filter(|t| t.is_punct(b'.')).count();
        assert_eq!(puncts, 2, "only the range dots survive");
    }
}
