//! The ratchet baseline: pre-existing violations, checked in, only shrinks.
//!
//! R1 landed against a codebase with hundreds of historical `.unwrap()`
//! sites. Rather than waiving them all (noise) or failing the build (a
//! flag-day), the baseline records the *count* of findings per (rule, file).
//! A build fails when any file exceeds its recorded count — new violations
//! cannot land — and `--check-baseline` additionally fails when the recorded
//! count exceeds reality: fixing a violation *forces* the baseline to
//! shrink (`--update-baseline`), so the ratchet never loosens silently.
//!
//! Counts (not `file:line` pairs) keep the baseline stable under unrelated
//! edits: adding a doc comment above an old `.unwrap()` must not churn it.

use crate::rules::{Finding, Rule};
use std::collections::BTreeMap;

/// Per-(rule, file) allowed violation counts.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    pub entries: BTreeMap<(Rule, String), u32>,
}

impl Baseline {
    /// Parse the checked-in format: one `<rule> <path> <count>` per line,
    /// `#` comments and blank lines ignored.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (rule, path, count) = (parts.next(), parts.next(), parts.next());
            let parsed =
                rule.and_then(Rule::parse).zip(path).zip(count.and_then(|c| c.parse::<u32>().ok()));
            let Some(((rule, path), count)) = parsed else {
                return Err(format!(
                    "baseline line {}: expected `<rule> <path> <count>`, got `{raw}`",
                    n + 1
                ));
            };
            if parts.next().is_some() {
                return Err(format!("baseline line {}: trailing tokens in `{raw}`", n + 1));
            }
            if entries.insert((rule, path.to_string()), count).is_some() {
                return Err(format!("baseline line {}: duplicate entry `{raw}`", n + 1));
            }
        }
        Ok(Baseline { entries })
    }

    /// Serialize findings into baseline text (the `--update-baseline` path).
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from(
            "# qpipe-lint ratchet baseline — pre-existing violations, counts per\n\
             # (rule, file). This file may only SHRINK: new violations fail the\n\
             # build outright, and fixing one requires `--update-baseline` so the\n\
             # fix is locked in. Maintained by `cargo run -p qpipe-lint -- \n\
             # --update-baseline`; do not hand-edit counts upward.\n",
        );
        for ((rule, path), count) in &counts(findings) {
            out.push_str(&format!("{rule} {path} {count}\n"));
        }
        out
    }

    /// Compare `findings` against this baseline.
    ///
    /// Returns `(violations, stale)`:
    /// * `violations` — findings in excess of the baseline (all findings of
    ///   any (rule, file) whose count grew — line identity across edits is
    ///   unknowable, so the whole group is reported for triage);
    /// * `stale` — messages for (rule, file) entries whose recorded count
    ///   exceeds reality (strict/CI mode fails on these: shrink the file).
    pub fn check(&self, findings: &[Finding]) -> (Vec<Finding>, Vec<String>) {
        let actual = counts(findings);
        let mut violations = Vec::new();
        for ((rule, path), &n) in &actual {
            let allowed = self.entries.get(&(*rule, path.clone())).copied().unwrap_or(0);
            if n > allowed {
                violations.extend(
                    findings.iter().filter(|f| f.rule == *rule && f.path == *path).cloned().map(
                        |mut f| {
                            f.msg = format!("{} [{} found, baseline allows {}]", f.msg, n, allowed);
                            f
                        },
                    ),
                );
            }
        }
        let mut stale = Vec::new();
        for ((rule, path), &allowed) in &self.entries {
            let n = actual.get(&(*rule, path.clone())).copied().unwrap_or(0);
            if n < allowed {
                stale.push(format!(
                    "baseline allows {allowed} {rule} violation(s) in {path} but only {n} \
                     remain — run `cargo run -p qpipe-lint -- --update-baseline` to lock \
                     the improvement in"
                ));
            }
        }
        (violations, stale)
    }

    /// Total allowed violations (the ratchet's current height).
    pub fn total(&self) -> u32 {
        self.entries.values().sum()
    }
}

fn counts(findings: &[Finding]) -> BTreeMap<(Rule, String), u32> {
    let mut m = BTreeMap::new();
    for f in findings {
        *m.entry((f.rule, f.path.clone())).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, path: &str, line: u32) -> Finding {
        Finding { rule, path: path.into(), line, msg: "x".into() }
    }

    #[test]
    fn parse_render_roundtrip() {
        let fs = vec![
            finding(Rule::R1, "crates/a/src/l.rs", 3),
            finding(Rule::R1, "crates/a/src/l.rs", 9),
            finding(Rule::R2, "crates/b/src/m.rs", 1),
        ];
        let b = Baseline::parse(&Baseline::render(&fs)).unwrap();
        assert_eq!(b.entries[&(Rule::R1, "crates/a/src/l.rs".into())], 2);
        assert_eq!(b.entries[&(Rule::R2, "crates/b/src/m.rs".into())], 1);
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn growth_is_a_violation_shrink_is_stale() {
        let b = Baseline::parse("R1 crates/a/src/l.rs 1\nR1 crates/c/src/n.rs 2\n").unwrap();
        // Growth in l.rs: both findings reported.
        let grown = vec![
            finding(Rule::R1, "crates/a/src/l.rs", 3),
            finding(Rule::R1, "crates/a/src/l.rs", 9),
        ];
        let (v, stale) = b.check(&grown);
        assert_eq!(v.len(), 2);
        // n.rs went from 2 to 0: stale entry flagged.
        assert_eq!(stale.len(), 1);
        assert!(stale[0].contains("crates/c/src/n.rs"));
    }

    #[test]
    fn within_baseline_is_clean() {
        let b = Baseline::parse("R1 crates/a/src/l.rs 2\n").unwrap();
        let fs = vec![
            finding(Rule::R1, "crates/a/src/l.rs", 3),
            finding(Rule::R1, "crates/a/src/l.rs", 9),
        ];
        let (v, stale) = b.check(&fs);
        assert!(v.is_empty());
        assert!(stale.is_empty());
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Baseline::parse("R9 foo 1").is_err());
        assert!(Baseline::parse("R1 foo").is_err());
        assert!(Baseline::parse("R1 foo 1 extra").is_err());
        assert!(Baseline::parse("R1 foo 1\nR1 foo 2").is_err());
    }
}
