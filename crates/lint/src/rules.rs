//! The QPipe rule engine: R1–R4 over lexed token streams.
//!
//! Each rule walks the token stream produced by [`crate::lexer`] looking for
//! short, unambiguous token shapes. Findings are line-addressed; waivers
//! (`// lint:allow(rule): reason`) and `#[cfg(test)]` spans are resolved
//! here so every rule shares the same suppression semantics.

use crate::lexer::{lex, Lexed, Tok, Token};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The rule catalog. See the crate docs for the full contract of each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Panic-freedom: no `.unwrap()` / `.expect(` / `panic!` /
    /// `unreachable!` / `todo!` / `unimplemented!` in non-test engine code.
    R1,
    /// Thread hygiene: `thread::spawn` / `thread::Builder` only in the
    /// allowlisted files — new concurrency routes through `WorkerPool`.
    R2,
    /// Lock discipline: no blocking pipe/channel call (`.send(` / `.recv(` /
    /// `.wait(`) while a `.lock()` guard is live in scope, and no nested
    /// lock acquisition violating the `admit → engine group → pipe`
    /// hierarchy.
    R3,
    /// Metrics integrity: every atomic counter in `MetricsInner` must have a
    /// mutator, be driven from outside `metrics.rs`, and be surfaced in
    /// `MetricsSnapshot`.
    R4,
}

impl Rule {
    pub const ALL: [Rule; 4] = [Rule::R1, Rule::R2, Rule::R3, Rule::R4];

    /// Parse a rule key as written in a waiver: `R1`/`panic`, `R2`/`thread`,
    /// `R3`/`lock`, `R4`/`metrics`.
    pub fn parse(key: &str) -> Option<Rule> {
        match key.trim() {
            "R1" | "panic" => Some(Rule::R1),
            "R2" | "thread" => Some(Rule::R2),
            "R3" | "lock" => Some(Rule::R3),
            "R4" | "metrics" => Some(Rule::R4),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
        };
        f.write_str(s)
    }
}

/// One source file handed to the engine. `path` is repo-relative with
/// forward slashes (`crates/core/src/scan.rs`) — scoping and the baseline
/// key off it.
pub struct SourceFile {
    pub path: String,
    pub src: String,
}

/// One diagnostic: `path:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    pub path: String,
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Engine configuration: rule scopes and allowlists. [`Config::default`] is
/// the QPipe contract; tests construct narrower ones.
pub struct Config {
    /// Crates whose `src/` trees R1–R3 police (the engine crates — the
    /// harness crates legitimately spawn client threads and panic in tests).
    pub engine_crates: Vec<String>,
    /// Files where `thread::spawn`/`thread::Builder` is allowed (R2): all
    /// other concurrency must route through `WorkerPool`.
    pub spawn_allowlist: Vec<String>,
    /// The metrics hub file (R4); `None` disables R4 (fixture tests).
    pub metrics_file: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            engine_crates: ["common", "storage", "exec", "core"]
                .iter()
                .map(|c| format!("crates/{c}/src/"))
                .collect(),
            spawn_allowlist: [
                "crates/core/src/pool.rs",  // the WorkerPool itself
                "crates/core/src/admit.rs", // the admission sweeper service
                "crates/core/src/scan.rs",  // the circular scanner service
                "crates/core/src/host.rs",  // shared-host service threads
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            metrics_file: Some("crates/common/src/metrics.rs".into()),
        }
    }
}

impl Config {
    fn in_engine_scope(&self, path: &str) -> bool {
        self.engine_crates.iter().any(|c| path.starts_with(c.as_str()))
    }
}

/// Run every rule over `files`, returning unwaived findings sorted by
/// (path, line). Waived findings are dropped here; a waiver whose reason is
/// empty is itself reported (a waiver must say *why*).
pub fn run(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lexed: Vec<Lexed> = files.iter().map(|f| lex(&f.src)).collect();
    for (f, lx) in files.iter().zip(&lexed) {
        let tests = test_spans(&lx.tokens);
        if cfg.in_engine_scope(&f.path) {
            rule_r1(f, lx, &tests, &mut findings);
            rule_r2(f, lx, &tests, cfg, &mut findings);
            rule_r3(f, lx, &tests, &mut findings);
        }
    }
    if let Some(mpath) = &cfg.metrics_file {
        rule_r4(files, &lexed, mpath, &mut findings);
    }
    // Apply waivers from each file's comments.
    let mut out = Vec::new();
    for finding in findings {
        let idx = files.iter().position(|f| f.path == finding.path);
        let waived = idx.is_some_and(|i| {
            waivers(&lexed[i]).iter().any(|w| w.covers(finding.rule, finding.line))
        });
        if !waived {
            out.push(finding);
        }
    }
    // Malformed waivers (no reason) are findings in their own right.
    for (f, lx) in files.iter().zip(&lexed) {
        for c in &lx.comments {
            if let Some(rest) = c.text.trim().strip_prefix("lint:allow(") {
                let ok = rest.split_once(')').is_some_and(|(key, tail)| {
                    Rule::parse(key).is_some()
                        && tail.trim_start().strip_prefix(':').is_some_and(|r| !r.trim().is_empty())
                });
                if !ok {
                    out.push(Finding {
                        rule: Rule::R1,
                        path: f.path.clone(),
                        line: c.line,
                        msg: "malformed waiver: use `lint:allow(rule): reason` with a known \
                              rule (R1|panic, R2|thread, R3|lock, R4|metrics) and a non-empty \
                              reason"
                            .into(),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

struct Waiver {
    rule: Rule,
    line: u32,
}

impl Waiver {
    /// A waiver covers its own line (trailing comment) and the next line
    /// (comment above the violation).
    fn covers(&self, rule: Rule, line: u32) -> bool {
        self.rule == rule && (line == self.line || line == self.line + 1)
    }
}

fn waivers(lx: &Lexed) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in &lx.comments {
        let Some(rest) = c.text.trim().strip_prefix("lint:allow(") else { continue };
        let Some((key, tail)) = rest.split_once(')') else { continue };
        let Some(rule) = Rule::parse(key) else { continue };
        let has_reason = tail.trim_start().strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
        if has_reason {
            out.push(Waiver { rule, line: c.line });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// #[cfg(test)] spans
// ---------------------------------------------------------------------------

/// Line ranges (inclusive) covered by `#[cfg(test)]`- or `#[test]`-gated
/// items. Computed by matching the attribute's token shape and then pairing
/// the next `{` with its closing brace; an item that ends in `;` before any
/// brace (e.g. `#[cfg(test)] use …;`) covers just its own lines.
fn test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct(b'#') && tokens.get(i + 1).is_some_and(|t| t.is_punct(b'[')) {
            // Collect the attribute body up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut attr: Vec<&Token> = Vec::new();
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct(b'[') {
                    depth += 1;
                } else if tokens[j].is_punct(b']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                attr.push(&tokens[j]);
                j += 1;
            }
            let is_test_attr = matches!(attr.first(), Some(t) if t.is_ident("test"))
                && attr.len() == 1
                || (attr.len() >= 4
                    && attr[0].is_ident("cfg")
                    && attr[1].is_punct(b'(')
                    && attr[2].is_ident("test"));
            if is_test_attr {
                let start_line = tokens[i].line;
                // Find the gated item's body: first `{` (match to close) or a
                // `;` that arrives first (no body).
                let mut k = j + 1;
                while k < tokens.len() && !tokens[k].is_punct(b'{') && !tokens[k].is_punct(b';') {
                    k += 1;
                }
                if k < tokens.len() && tokens[k].is_punct(b'{') {
                    let mut bd = 1u32;
                    let mut m = k + 1;
                    while m < tokens.len() && bd > 0 {
                        if tokens[m].is_punct(b'{') {
                            bd += 1;
                        } else if tokens[m].is_punct(b'}') {
                            bd -= 1;
                        }
                        m += 1;
                    }
                    let end_line = tokens.get(m.saturating_sub(1)).map_or(u32::MAX, |t| t.line);
                    spans.push((start_line, end_line));
                    i = m;
                    continue;
                } else if k < tokens.len() {
                    spans.push((start_line, tokens[k].line));
                    i = k + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    spans
}

fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

// ---------------------------------------------------------------------------
// R1 — panic-freedom
// ---------------------------------------------------------------------------

fn rule_r1(f: &SourceFile, lx: &Lexed, tests: &[(u32, u32)], out: &mut Vec<Finding>) {
    let t = &lx.tokens;
    for i in 0..t.len() {
        let (line, what) = if t[i].is_punct(b'.')
            && t.get(i + 1).is_some_and(|x| x.is_ident("unwrap"))
            && t.get(i + 2).is_some_and(|x| x.is_punct(b'('))
        {
            (t[i].line, ".unwrap()")
        } else if t[i].is_punct(b'.')
            && t.get(i + 1).is_some_and(|x| x.is_ident("expect"))
            && t.get(i + 2).is_some_and(|x| x.is_punct(b'('))
        {
            (t[i].line, ".expect(")
        } else if t.get(i + 1).is_some_and(|x| x.is_punct(b'!'))
            && ["panic", "unreachable", "todo", "unimplemented"]
                .iter()
                .any(|m| t[i].is_ident(m))
            // `foo.panic!` can't occur; but make sure this is a macro call,
            // not `!=` on an identifier named e.g. `todo`.
            && t.get(i + 2).is_some_and(|x| x.is_punct(b'(') || x.is_punct(b'[') || x.is_punct(b'{'))
        {
            (t[i].line, "panicking macro")
        } else {
            continue;
        };
        if in_spans(tests, line) {
            continue;
        }
        out.push(Finding {
            rule: Rule::R1,
            path: f.path.clone(),
            line,
            msg: format!(
                "{what} in non-test engine code — return a QError (the containment \
                 contract: every failure settles as a clean packet failure) or waive \
                 with `// lint:allow(R1): reason`"
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// R2 — thread hygiene
// ---------------------------------------------------------------------------

fn rule_r2(f: &SourceFile, lx: &Lexed, tests: &[(u32, u32)], cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.spawn_allowlist.contains(&f.path) {
        return;
    }
    let t = &lx.tokens;
    for i in 0..t.len() {
        if t[i].is_ident("thread")
            && t.get(i + 1).is_some_and(|x| x.is_punct(b':'))
            && t.get(i + 2).is_some_and(|x| x.is_punct(b':'))
            && t.get(i + 3).is_some_and(|x| x.is_ident("spawn") || x.is_ident("Builder"))
        {
            let line = t[i].line;
            if in_spans(tests, line) {
                continue;
            }
            out.push(Finding {
                rule: Rule::R2,
                path: f.path.clone(),
                line,
                msg: "raw thread spawn outside the allowlist — route new concurrency \
                      through WorkerPool (pool containment: catch_unwind, abandon \
                      guards, busy accounting) or waive with `// lint:allow(R2): reason`"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R3 — lock discipline
// ---------------------------------------------------------------------------

/// Lock classes for the declared hierarchy `admit(1) → engine group(2) →
/// pipe(3)`: a lock may only be acquired while holding locks of *strictly
/// lower* rank. A file's own rank is the fallback when the receiver
/// expression doesn't name a layer (see [`receiver_rank`]).
fn lock_rank(path: &str) -> Option<u8> {
    if path.ends_with("/admit.rs") {
        Some(1)
    } else if path.ends_with("/scan.rs") || path.ends_with("/host.rs") {
        Some(2)
    } else if path.ends_with("/pipe.rs") {
        Some(3)
    } else {
        None
    }
}

/// Rank of a lock acquisition from its receiver expression: the *last*
/// identifier before `.lock()` that names a layer wins (the chain's final
/// segment owns the mutex — `self.scan_mgr.pipe.lock()` is a pipe-layer
/// lock even inside scan.rs). Falls back to the acquiring file's own rank
/// when no segment names a layer (`self.inner.lock()` in pipe.rs).
fn receiver_rank(recv: &[Token]) -> Option<u8> {
    let mut rank = None;
    for tok in recv {
        let Some(id) = tok.ident() else { continue };
        rank = if id.contains("pipe") {
            Some(3)
        } else if id.contains("group") || id.contains("host") || id.contains("scan") {
            Some(2)
        } else if id.contains("admit") || id.contains("ticket") {
            Some(1)
        } else {
            rank
        };
    }
    rank
}

struct Guard {
    name: String,
    line: u32,
    depth: usize,
    rank: Option<u8>,
}

fn rule_r3(f: &SourceFile, lx: &Lexed, tests: &[(u32, u32)], out: &mut Vec<Finding>) {
    let t = &lx.tokens;
    let rank = lock_rank(&f.path);
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < t.len() {
        let line = t[i].line;
        if t[i].is_punct(b'{') {
            depth += 1;
        } else if t[i].is_punct(b'}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
        } else if t[i].is_ident("drop")
            && t.get(i + 1).is_some_and(|x| x.is_punct(b'('))
            && t.get(i + 3).is_some_and(|x| x.is_punct(b')'))
        {
            if let Some(name) = t.get(i + 2).and_then(|x| x.ident()) {
                guards.retain(|g| g.name != name);
            }
        } else if t[i].is_ident("let") {
            // A `let`-bound `.lock()` / `.try_lock()` in this statement
            // creates a guard that lives to the end of the enclosing block.
            // The bound name is the last plain identifier before `=` that is
            // not a pattern keyword.
            let mut j = i + 1;
            let mut name: Option<&str> = None;
            while j < t.len() && !t[j].is_punct(b'=') && !t[j].is_punct(b';') {
                if let Some(id) = t[j].ident() {
                    if !matches!(id, "mut" | "Some" | "Ok" | "Err" | "ref") {
                        name = Some(id);
                    }
                }
                j += 1;
            }
            if t.get(j).is_some_and(|x| x.is_punct(b'=')) {
                // Scan the initializer for a *terminal* lock acquisition:
                // `… .lock();` / `… .try_lock() else` — the bound value IS
                // the guard. Chains that keep going (`.lock().get(…)`) hold
                // only a temporary, and block/closure initializers (`= {`,
                // `= || {`) are left to their own inner `let`s — the scan
                // stops at the first `{`. (`if let Some(g) = x.try_lock()`
                // bindings are missed by design: their guard's extent is the
                // `if` body, which this flat tracker can't bound precisely.)
                let mut k = j + 1;
                let mut locked = false;
                while k < t.len() && !t[k].is_punct(b';') && !t[k].is_punct(b'{') {
                    if (t[k].is_ident("lock") || t[k].is_ident("try_lock"))
                        && t.get(k.wrapping_sub(1)).is_some_and(|x| x.is_punct(b'.'))
                        && t.get(k + 1).is_some_and(|x| x.is_punct(b'('))
                        && t.get(k + 2).is_some_and(|x| x.is_punct(b')'))
                        && t.get(k + 3).is_some_and(|x| x.is_punct(b';') || x.is_ident("else"))
                    {
                        locked = true;
                        break;
                    }
                    k += 1;
                }
                if locked && !in_spans(tests, line) {
                    let acq_rank = receiver_rank(&t[j + 1..k]).or(rank);
                    // Nested-acquisition hierarchy check against live guards.
                    // Same-rank nesting (e.g. admission controller state →
                    // ticket state, both rank 1) is the owning layer's
                    // internal protocol; only *inversions* of the declared
                    // cross-layer order are violations.
                    if let (Some(new_rank), Some(held)) =
                        (acq_rank, guards.iter().filter_map(|g| g.rank).max())
                    {
                        if new_rank < held {
                            out.push(Finding {
                                rule: Rule::R3,
                                path: f.path.clone(),
                                line,
                                msg: format!(
                                    "nested lock acquisition inverts the declared \
                                     hierarchy admit(1) → engine group(2) → pipe(3): \
                                     acquiring rank {new_rank} while holding rank {held}"
                                ),
                            });
                        }
                    }
                    if let Some(name) = name {
                        guards.push(Guard { name: name.into(), line, depth, rank: acq_rank });
                    }
                }
                i = j;
                continue;
            }
        } else if t[i].is_punct(b'.')
            && t.get(i + 1)
                .is_some_and(|x| x.is_ident("send") || x.is_ident("recv") || x.is_ident("wait"))
            && t.get(i + 2).is_some_and(|x| x.is_punct(b'('))
            && !guards.is_empty()
            && !in_spans(tests, line)
        {
            let call = t[i + 1].ident().unwrap_or_default().to_string();
            // Condvar protocol exemption: `.wait(&mut g)` where `g` IS one
            // of the live guards is releasing that lock, not blocking under
            // it. Scan the argument tokens for a live guard name.
            let mut exempt = false;
            if call == "wait" {
                let mut k = i + 3;
                let mut pd = 1i32;
                while k < t.len() && pd > 0 {
                    if t[k].is_punct(b'(') {
                        pd += 1;
                    } else if t[k].is_punct(b')') {
                        pd -= 1;
                    } else if let Some(id) = t[k].ident() {
                        if guards.iter().any(|g| g.name == id) {
                            exempt = true;
                        }
                    }
                    k += 1;
                }
            }
            if !exempt {
                let g = &guards[guards.len() - 1];
                out.push(Finding {
                    rule: Rule::R3,
                    path: f.path.clone(),
                    line,
                    msg: format!(
                        "blocking `.{call}(` while the lock guard `{}` (taken on line {}) \
                         is still live — a full pipe here stalls every holder of that \
                         mutex; drop the guard first (the shape PR 8's starvation \
                         breaker exists to mitigate)",
                        g.name, g.line
                    ),
                });
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// R4 — metrics integrity
// ---------------------------------------------------------------------------

fn rule_r4(files: &[SourceFile], lexed: &[Lexed], mpath: &str, out: &mut Vec<Finding>) {
    let Some(mi) = files.iter().position(|f| f.path == *mpath) else {
        return; // metrics hub not in the file set (scoped fixture run)
    };
    let t = &lexed[mi].tokens;
    // 1. Atomic counter and histogram fields of MetricsInner (name, line).
    let inner_fields = struct_fields(t, "MetricsInner");
    let counters = inner_fields
        .iter()
        .filter(|(_, _, ty)| ty.iter().any(|s| s == "AtomicU64"))
        .map(|(name, line, _)| (name.clone(), *line))
        .collect::<Vec<_>>();
    let hists = inner_fields
        .iter()
        .filter(|(_, _, ty)| ty.iter().any(|s| s == "Histogram"))
        .map(|(name, line, _)| (name.clone(), *line))
        .collect::<Vec<_>>();
    // 2. Snapshot field names; histograms must surface as a
    //    `HistogramSummary` percentile field specifically.
    let snapshot_fields = struct_fields(t, "MetricsSnapshot");
    let snapshot: BTreeSet<String> = snapshot_fields.iter().map(|(n, _, _)| n.clone()).collect();
    let snapshot_hist: BTreeSet<String> = snapshot_fields
        .iter()
        .filter(|(_, _, ty)| ty.iter().any(|s| s == "HistogramSummary"))
        .map(|(n, _, _)| n.clone())
        .collect();
    // 3. Mutator methods: fn whose body does `<counter>.fetch_add/fetch_max/
    //    store` or `<histogram>.record`. Maps field -> method names.
    let mut mutators: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    let mut cur_fn: Option<(String, usize)> = None; // (name, brace depth at body start)
    let mut depth = 0usize;
    for i in 0..t.len() {
        if t[i].is_punct(b'{') {
            depth += 1;
        } else if t[i].is_punct(b'}') {
            depth = depth.saturating_sub(1);
            if let Some((_, d)) = &cur_fn {
                if depth < *d {
                    cur_fn = None;
                }
            }
        } else if t[i].is_ident("fn") {
            if let Some(name) = t.get(i + 1).and_then(|x| x.ident()) {
                cur_fn = Some((name.to_string(), depth + 1));
            }
        } else if t.get(i + 1).is_some_and(|x| x.is_punct(b'.'))
            && t.get(i + 2).is_some_and(|x| {
                x.is_ident("fetch_add")
                    || x.is_ident("fetch_max")
                    || x.is_ident("store")
                    || x.is_ident("record")
            })
        {
            if let (Some(field), Some((fname, _))) = (t[i].ident(), &cur_fn) {
                if let Some((cname, _)) =
                    counters.iter().chain(hists.iter()).find(|(c, _)| c == field)
                {
                    let v = mutators.entry(cname.as_str()).or_default();
                    if !v.contains(fname) {
                        v.push(fname.clone());
                    }
                }
            }
        }
    }
    // 4. Method call sites outside metrics.rs: `.name(`.
    let mut called: BTreeSet<&str> = BTreeSet::new();
    for (fi, lx) in lexed.iter().enumerate() {
        if fi == mi {
            continue;
        }
        let tt = &lx.tokens;
        for i in 0..tt.len() {
            if tt[i].is_punct(b'.') && tt.get(i + 2).is_some_and(|x| x.is_punct(b'(')) {
                if let Some(id) = tt.get(i + 1).and_then(|x| x.ident()) {
                    for methods in mutators.values() {
                        if let Some(m) = methods.iter().find(|m| *m == id) {
                            called.insert(m.as_str());
                        }
                    }
                }
            }
        }
    }
    for (name, line) in &counters {
        let methods = mutators.get(name.as_str());
        match methods {
            None => out.push(Finding {
                rule: Rule::R4,
                path: mpath.to_string(),
                line: *line,
                msg: format!(
                    "counter `{name}` has no mutator method in metrics.rs — it can \
                     never move; remove it or add an `add_*`/`note_*` method"
                ),
            }),
            Some(ms) if !ms.iter().any(|m| called.contains(m.as_str())) => out.push(Finding {
                rule: Rule::R4,
                path: mpath.to_string(),
                line: *line,
                msg: format!(
                    "counter `{name}` is never driven from outside metrics.rs (its \
                     mutator{} {} has no external call site) — a dead metric reads \
                     as \"nothing happened\" on every dashboard; wire it or remove it",
                    if ms.len() == 1 { "" } else { "s" },
                    ms.join("/"),
                ),
            }),
            _ => {}
        }
        if !snapshot.contains(name.as_str()) {
            out.push(Finding {
                rule: Rule::R4,
                path: mpath.to_string(),
                line: *line,
                msg: format!(
                    "counter `{name}` is not surfaced in MetricsSnapshot — it is \
                     incremented but unreadable; add the snapshot field"
                ),
            });
        }
    }
    for (name, line) in &hists {
        let methods = mutators.get(name.as_str());
        match methods {
            None => out.push(Finding {
                rule: Rule::R4,
                path: mpath.to_string(),
                line: *line,
                msg: format!(
                    "histogram `{name}` has no record site in metrics.rs — it can \
                     never fill; remove it or add a `record_*` method"
                ),
            }),
            Some(ms) if !ms.iter().any(|m| called.contains(m.as_str())) => out.push(Finding {
                rule: Rule::R4,
                path: mpath.to_string(),
                line: *line,
                msg: format!(
                    "histogram `{name}` is never driven from outside metrics.rs (its \
                     record method{} {} has no external call site) — a dead histogram \
                     reports zero percentiles forever; wire it or remove it",
                    if ms.len() == 1 { "" } else { "s" },
                    ms.join("/"),
                ),
            }),
            _ => {}
        }
        if !snapshot_hist.contains(name.as_str()) {
            out.push(Finding {
                rule: Rule::R4,
                path: mpath.to_string(),
                line: *line,
                msg: format!(
                    "histogram `{name}` is not surfaced as a HistogramSummary \
                     percentile field in MetricsSnapshot — it is recorded but its \
                     p50/p95/p99 are unreadable; add the snapshot field"
                ),
            });
        }
    }
}

/// The named struct's fields as (name, decl line, type tokens). Parses the
/// token shape `struct <Name> { [pub] name: Type, … }`, tracking brace and
/// angle depth so nested generics don't split fields.
fn struct_fields(t: &[Token], name: &str) -> Vec<(String, u32, Vec<String>)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        if t[i].is_ident("struct") && t.get(i + 1).is_some_and(|x| x.is_ident(name)) {
            // Advance to the opening brace (skipping generics).
            let mut j = i + 2;
            while j < t.len() && !t[j].is_punct(b'{') {
                j += 1;
            }
            let mut depth = 1i32;
            let mut k = j + 1;
            while k < t.len() && depth > 0 {
                if t[k].is_punct(b'{') || t[k].is_punct(b'(') || t[k].is_punct(b'<') {
                    depth += if t[k].is_punct(b'{') { 1 } else { 0 };
                }
                if t[k].is_punct(b'}') {
                    depth -= 1;
                    k += 1;
                    continue;
                }
                // A field starts at `[pub] ident :` at depth 1.
                if depth == 1 {
                    let mut f = k;
                    if t[f].is_ident("pub") {
                        f += 1;
                    }
                    if let Some(id) = t.get(f).and_then(|x| x.ident()) {
                        if t.get(f + 1).is_some_and(|x| x.is_punct(b':'))
                            && !t.get(f + 2).is_some_and(|x| x.is_punct(b':'))
                        {
                            // Type tokens run to the `,` or `}` at this depth
                            // (angle/paren nesting tracked).
                            let mut ty = Vec::new();
                            let mut m = f + 2;
                            let mut nd = 0i32;
                            while m < t.len() {
                                match &t[m].tok {
                                    Tok::Punct(b'<') | Tok::Punct(b'(') => nd += 1,
                                    Tok::Punct(b'>') | Tok::Punct(b')') => nd -= 1,
                                    Tok::Punct(b',') if nd <= 0 => break,
                                    Tok::Punct(b'}') if nd <= 0 => break,
                                    Tok::Ident(s) => ty.push(s.clone()),
                                    _ => {}
                                }
                                m += 1;
                            }
                            out.push((id.to_string(), t[f].line, ty));
                            k = m;
                            continue;
                        }
                    }
                }
                k += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one(path: &str, src: &str) -> Vec<Finding> {
        let cfg = Config {
            engine_crates: vec!["crates/".into()],
            spawn_allowlist: vec![],
            metrics_file: None,
        };
        run(&[SourceFile { path: path.into(), src: src.into() }], &cfg)
    }

    #[test]
    fn r1_skips_cfg_test_modules() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn g() { y.unwrap(); }\n}\n";
        let f = run_one("crates/a/src/l.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn waiver_suppresses_exactly_one_line() {
        let src = "// lint:allow(R1): boot-time invariant\nfn f() { x.unwrap(); }\nfn g() { y.unwrap(); }\n";
        let f = run_one("crates/a/src/l.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn malformed_waiver_is_a_finding() {
        let src = "// lint:allow(R1)\nfn f() {}\n";
        let f = run_one("crates/a/src/l.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("malformed waiver"));
    }
}
