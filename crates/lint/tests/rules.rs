//! Fixture tests for every rule: a positive (the rule fires), a negative
//! (the idiomatic shape passes), a waiver (suppression works and demands a
//! reason), and the baseline ratchet (growth fails, shrinking goes stale).

use qpipe_lint::{run, Baseline, Config, Finding, Rule, SourceFile};

fn engine_cfg() -> Config {
    Config {
        engine_crates: vec!["crates/core/src/".into(), "crates/exec/src/".into()],
        spawn_allowlist: vec!["crates/core/src/pool.rs".into()],
        metrics_file: None,
    }
}

fn lint_one(path: &str, src: &str) -> Vec<Finding> {
    run(&[SourceFile { path: path.into(), src: src.into() }], &engine_cfg())
}

fn rules_of(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------------------
// R1 — panic-freedom
// ---------------------------------------------------------------------------

#[test]
fn r1_positive_all_panic_shapes() {
    let src = "fn a(x: Option<u8>) -> u8 {\n\
               \x20   let v = x.unwrap();\n\
               \x20   let w = x.expect(\"set\");\n\
               \x20   if v > w { panic!(\"boom\") }\n\
               \x20   match v { 0 => unreachable!(), 1 => todo!(), _ => unimplemented!() }\n\
               }\n";
    let f = lint_one("crates/core/src/fix.rs", src);
    assert_eq!(f.len(), 6, "unwrap, expect, and all four macros: {f:?}");
    assert!(f.iter().all(|x| x.rule == Rule::R1));
}

#[test]
fn r1_negative_out_of_scope_and_tests() {
    // Harness crates may panic freely…
    let f = lint_one("crates/workloads/src/driver.rs", "fn a() { x.unwrap(); }\n");
    assert!(f.is_empty(), "{f:?}");
    // …and so may #[cfg(test)] modules and #[test] fns inside engine crates.
    let src = "fn ok() -> u8 { 0 }\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t() { None::<u8>.unwrap(); panic!(\"fine here\"); }\n\
               }\n";
    let f = lint_one("crates/core/src/fix.rs", src);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn r1_negative_strings_and_idents_do_not_count() {
    // `panic` in a string / a field named `todo` / `!=` are not macro calls.
    let src = "fn a(todo: u8) -> bool {\n\
               \x20   let msg = \"do not panic!(now)\";\n\
               \x20   todo != msg.len() as u8\n\
               }\n";
    let f = lint_one("crates/core/src/fix.rs", src);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn r1_waiver_needs_reason_and_covers_next_line() {
    // Trailing waiver and comment-above waiver both suppress.
    let src = "fn a(x: Option<u8>) {\n\
               \x20   x.unwrap(); // lint:allow(R1): boot invariant, config validated above\n\
               \x20   // lint:allow(panic): mirrors the line above\n\
               \x20   x.unwrap();\n\
               }\n";
    assert!(lint_one("crates/core/src/fix.rs", src).is_empty());
    // A reason-less waiver suppresses nothing and is itself reported.
    let src = "fn a(x: Option<u8>) {\n\
               \x20   // lint:allow(R1)\n\
               \x20   x.unwrap();\n\
               }\n";
    let f = lint_one("crates/core/src/fix.rs", src);
    assert_eq!(f.len(), 2, "the unwrap AND the malformed waiver: {f:?}");
    assert!(f.iter().any(|x| x.msg.contains("malformed waiver")));
}

// ---------------------------------------------------------------------------
// R2 — thread hygiene
// ---------------------------------------------------------------------------

#[test]
fn r2_positive_spawn_and_builder() {
    let src = "fn a() {\n\
               \x20   std::thread::spawn(|| {});\n\
               \x20   let b = std::thread::Builder::new();\n\
               }\n";
    let f = lint_one("crates/core/src/fix.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::R2, Rule::R2], "{f:?}");
}

#[test]
fn r2_negative_allowlisted_file() {
    let src = "fn a() { std::thread::spawn(|| {}); }\n";
    let f = lint_one("crates/core/src/pool.rs", src);
    assert!(f.is_empty(), "the WorkerPool itself may spawn: {f:?}");
}

#[test]
fn r2_waiver() {
    let src = "// lint:allow(R2): service thread joined in Drop, see DeadlockDetector\n\
               fn a() { std::thread::spawn(|| {}); }\n";
    assert!(lint_one("crates/core/src/fix.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// R3 — lock discipline
// ---------------------------------------------------------------------------

#[test]
fn r3_positive_blocking_call_under_guard() {
    let src = "fn a(m: M, tx: T, rx: R) {\n\
               \x20   let g = m.lock();\n\
               \x20   tx.send(1);\n\
               \x20   rx.recv();\n\
               }\n";
    let f = lint_one("crates/core/src/fix.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::R3, Rule::R3], "{f:?}");
    assert!(f[0].msg.contains("`g`"), "names the live guard: {}", f[0].msg);
}

#[test]
fn r3_negative_guard_dropped_or_scoped() {
    // Explicit drop releases the guard; a block scope does too.
    let src = "fn a(m: M, tx: T) {\n\
               \x20   let g = m.lock();\n\
               \x20   drop(g);\n\
               \x20   tx.send(1);\n\
               \x20   { let h = m.lock(); }\n\
               \x20   tx.send(2);\n\
               }\n";
    assert!(lint_one("crates/core/src/fix.rs", src).is_empty());
}

#[test]
fn r3_negative_condvar_wait_on_held_guard() {
    // `.wait(&mut g)` releases g while waiting — the condvar protocol.
    let src = "fn a(m: M, cv: C) {\n\
               \x20   let mut g = m.lock();\n\
               \x20   while !*g { cv.wait(&mut g); }\n\
               }\n";
    assert!(lint_one("crates/core/src/fix.rs", src).is_empty());
}

#[test]
fn r3_positive_hierarchy_inversion() {
    // pipe.rs holds its own lock (rank 3) and then acquires admission state
    // (receiver names `ticket` → rank 1): inverts admit → engine → pipe.
    let src = "fn a(&self, ticket: T) {\n\
               \x20   let g = self.inner.lock();\n\
               \x20   let t = ticket.state.lock();\n\
               }\n";
    let f = lint_one("crates/core/src/pipe.rs", src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].msg.contains("inverts"), "{}", f[0].msg);
}

#[test]
fn r3_negative_hierarchy_order_and_same_rank() {
    // Declared order (admit → pipe) and same-rank nesting both pass.
    let src = "fn a(&self, ticket: T, pipe: P) {\n\
               \x20   let t = ticket.state.lock();\n\
               \x20   let p = pipe.inner.lock();\n\
               }\n\
               fn b(&self, ticket: T) {\n\
               \x20   let g = self.state.lock();\n\
               \x20   let t = ticket.state.lock();\n\
               }\n";
    assert!(lint_one("crates/core/src/admit.rs", src).is_empty());
}

#[test]
fn r3_waiver() {
    let src = "fn a(m: M, tx: T) {\n\
               \x20   let g = m.lock();\n\
               \x20   // lint:allow(R3): bounded pipe is empty here by construction\n\
               \x20   tx.send(1);\n\
               }\n";
    assert!(lint_one("crates/core/src/fix.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// R4 — metrics integrity
// ---------------------------------------------------------------------------

fn metrics_fixture(extra_counter: &str, extra_snapshot: &str) -> String {
    format!(
        "struct MetricsInner {{\n\
         \x20   queries_done: AtomicU64,\n\
         {extra_counter}\
         }}\n\
         pub struct MetricsSnapshot {{\n\
         \x20   pub queries_done: u64,\n\
         {extra_snapshot}\
         }}\n\
         impl Metrics {{\n\
         \x20   pub fn add_query(&self) {{ self.inner.queries_done.fetch_add(1, O); }}\n\
         }}\n"
    )
}

fn run_metrics(hub: &str, caller: &str) -> Vec<Finding> {
    let cfg = Config {
        engine_crates: vec![],
        spawn_allowlist: vec![],
        metrics_file: Some("crates/common/src/metrics.rs".into()),
    };
    run(
        &[
            SourceFile { path: "crates/common/src/metrics.rs".into(), src: hub.into() },
            SourceFile { path: "crates/core/src/engine.rs".into(), src: caller.into() },
        ],
        &cfg,
    )
}

#[test]
fn r4_negative_wired_counter() {
    let hub = metrics_fixture("", "");
    let f = run_metrics(&hub, "fn done(m: &Metrics) { m.add_query(); }\n");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn r4_positive_counter_without_mutator() {
    let hub = metrics_fixture("    orphan: AtomicU64,\n", "    pub orphan: u64,\n");
    let f = run_metrics(&hub, "fn done(m: &Metrics) { m.add_query(); }\n");
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].rule == Rule::R4 && f[0].msg.contains("no mutator"), "{}", f[0].msg);
}

#[test]
fn r4_positive_mutator_never_called_externally() {
    let hub = metrics_fixture("", "");
    let f = run_metrics(&hub, "fn done() {}\n");
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].msg.contains("never driven from outside"), "{}", f[0].msg);
}

#[test]
fn r4_positive_counter_missing_from_snapshot() {
    let hub = "struct MetricsInner {\n\
               \x20   hidden: AtomicU64,\n\
               }\n\
               pub struct MetricsSnapshot {}\n\
               impl Metrics {\n\
               \x20   pub fn add_hidden(&self) { self.inner.hidden.fetch_add(1, O); }\n\
               }\n";
    let f = run_metrics(hub, "fn d(m: &Metrics) { m.add_hidden(); }\n");
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].msg.contains("not surfaced in MetricsSnapshot"), "{}", f[0].msg);
}

/// A metrics hub with one wired counter plus one `Histogram` field whose
/// record method and snapshot field are supplied by the caller.
fn hist_fixture(record_fn: &str, extra_snapshot: &str) -> String {
    format!(
        "struct MetricsInner {{\n\
         \x20   queries_done: AtomicU64,\n\
         \x20   wait_us: Histogram,\n\
         }}\n\
         pub struct MetricsSnapshot {{\n\
         \x20   pub queries_done: u64,\n\
         {extra_snapshot}\
         }}\n\
         impl Metrics {{\n\
         \x20   pub fn add_query(&self) {{ self.inner.queries_done.fetch_add(1, O); }}\n\
         {record_fn}\
         }}\n"
    )
}

#[test]
fn r4_negative_wired_histogram() {
    let hub = hist_fixture(
        "    pub fn record_wait(&self, us: u64) { self.inner.wait_us.record(us); }\n",
        "    pub wait_us: HistogramSummary,\n",
    );
    let f = run_metrics(&hub, "fn d(m: &Metrics) { m.add_query(); m.record_wait(5); }\n");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn r4_positive_histogram_without_record_site() {
    let hub = hist_fixture("", "    pub wait_us: HistogramSummary,\n");
    let f = run_metrics(&hub, "fn d(m: &Metrics) { m.add_query(); }\n");
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].rule == Rule::R4 && f[0].msg.contains("no record site"), "{}", f[0].msg);
}

#[test]
fn r4_positive_histogram_never_recorded_externally() {
    let hub = hist_fixture(
        "    pub fn record_wait(&self, us: u64) { self.inner.wait_us.record(us); }\n",
        "    pub wait_us: HistogramSummary,\n",
    );
    let f = run_metrics(&hub, "fn d(m: &Metrics) { m.add_query(); }\n");
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].msg.contains("never driven from outside"), "{}", f[0].msg);
}

#[test]
fn r4_positive_histogram_missing_percentile_snapshot() {
    // Surfacing the histogram as a plain integer is not enough: R4 demands a
    // `HistogramSummary` field so the percentiles are actually readable.
    let hub = hist_fixture(
        "    pub fn record_wait(&self, us: u64) { self.inner.wait_us.record(us); }\n",
        "    pub wait_us: u64,\n",
    );
    let f = run_metrics(&hub, "fn d(m: &Metrics) { m.add_query(); m.record_wait(5); }\n");
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].msg.contains("HistogramSummary"), "{}", f[0].msg);
}

// ---------------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------------

fn finding(rule: Rule, path: &str, line: u32) -> Finding {
    Finding { rule, path: path.into(), line, msg: "x".into() }
}

#[test]
fn ratchet_at_baseline_passes() {
    let b = Baseline::parse("R1 crates/core/src/a.rs 2\n").unwrap();
    let f = vec![
        finding(Rule::R1, "crates/core/src/a.rs", 3),
        finding(Rule::R1, "crates/core/src/a.rs", 9),
    ];
    let (violations, stale) = b.check(&f);
    assert!(violations.is_empty() && stale.is_empty());
}

#[test]
fn ratchet_growth_fails() {
    // One more violation than recorded: the whole file's findings surface.
    let b = Baseline::parse("R1 crates/core/src/a.rs 1\n").unwrap();
    let f = vec![
        finding(Rule::R1, "crates/core/src/a.rs", 3),
        finding(Rule::R1, "crates/core/src/a.rs", 9),
    ];
    let (violations, _) = b.check(&f);
    assert!(!violations.is_empty());
    // A rule/file pair absent from the baseline fails outright.
    let (violations, _) = b.check(&[finding(Rule::R2, "crates/core/src/a.rs", 3)]);
    assert_eq!(violations.len(), 1);
}

#[test]
fn ratchet_shrink_goes_stale() {
    // Fixing a site makes the recorded count stale — CI mode demands the
    // baseline shrink so the fix is locked in.
    let b = Baseline::parse("R1 crates/core/src/a.rs 2\n").unwrap();
    let (violations, stale) = b.check(&[finding(Rule::R1, "crates/core/src/a.rs", 3)]);
    assert!(violations.is_empty());
    assert_eq!(stale.len(), 1, "{stale:?}");
}

#[test]
fn ratchet_roundtrip_and_malformed_lines() {
    let f = vec![
        finding(Rule::R1, "crates/core/src/a.rs", 3),
        finding(Rule::R1, "crates/core/src/a.rs", 9),
        finding(Rule::R3, "crates/core/src/b.rs", 1),
    ];
    let b = Baseline::parse(&Baseline::render(&f)).unwrap();
    let (violations, stale) = b.check(&f);
    assert!(violations.is_empty() && stale.is_empty());
    assert_eq!(b.total(), 3);
    assert!(Baseline::parse("R9 crates/a.rs 1\n").is_err());
    assert!(Baseline::parse("R1 crates/a.rs not-a-number\n").is_err());
    assert!(Baseline::parse("R1 crates/a.rs 1\nR1 crates/a.rs 2\n").is_err(), "duplicate key");
}

// ---------------------------------------------------------------------------
// End-to-end over this workspace
// ---------------------------------------------------------------------------

#[test]
fn workspace_is_clean_against_checked_in_baseline() {
    // The real tree with the real config must pass against the checked-in
    // ratchet file — the same invariant CI enforces.
    let root = qpipe_lint::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let files = qpipe_lint::collect_sources(&root).expect("collect sources");
    let findings = run(&files, &Config::default());
    let text = std::fs::read_to_string(root.join("lint-baseline.txt")).expect("baseline");
    let baseline = Baseline::parse(&text).expect("parse baseline");
    let (violations, stale) = baseline.check(&findings);
    assert!(
        violations.is_empty(),
        "lint violations beyond baseline:\n{}",
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    assert!(stale.is_empty(), "stale baseline entries (run --update-baseline): {stale:?}");
}
