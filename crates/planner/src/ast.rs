//! Abstract syntax for the SQL-ish query language.
//!
//! The AST is deliberately close to the physical algebra: names instead of
//! column indices, but the same operator vocabulary as [`qpipe_exec`]. The
//! binder resolves names against the catalog and lowers to [`Expr`] trees;
//! nothing here knows about schemas.
//!
//! [`Expr`]: qpipe_exec::expr::Expr

use qpipe_exec::expr::{ArithOp, CmpOp};
use qpipe_exec::plan::AggFunc;

/// A possibly-qualified column name (`c_custkey` or `c.c_custkey`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    pub qualifier: Option<String>,
    pub name: String,
}

/// A literal as written.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    Int(i64),
    Float(f64),
    Str(String),
    Null,
    /// `DATE n`: day number in the synthetic calendar.
    Date(i64),
}

/// An unbound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    Column(ColRef),
    Literal(Lit),
    Cmp(CmpOp, Box<AstExpr>, Box<AstExpr>),
    And(Vec<AstExpr>),
    Or(Vec<AstExpr>),
    Not(Box<AstExpr>),
    Arith(ArithOp, Box<AstExpr>, Box<AstExpr>),
    /// `expr IN (lit, ...)` — literal lists only.
    InList(Box<AstExpr>, Vec<Lit>),
    IsNull(Box<AstExpr>),
    /// `expr LIKE 'prefix%'` — prefix patterns only.
    Like(Box<AstExpr>, String),
}

/// One SELECT-list item: a scalar expression or an aggregate call.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    Expr {
        expr: AstExpr,
        alias: Option<String>,
    },
    /// `func(expr)`; `expr` is `None` only for `COUNT(*)`.
    Agg {
        func: AggFunc,
        expr: Option<AstExpr>,
        alias: Option<String>,
    },
}

impl SelectItem {
    pub fn alias(&self) -> Option<&str> {
        match self {
            SelectItem::Expr { alias, .. } | SelectItem::Agg { alias, .. } => alias.as_deref(),
        }
    }
}

/// The SELECT list: `*` or explicit items.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    Star,
    Items(Vec<SelectItem>),
}

/// One table in FROM, with optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table binds to in scope (alias wins).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// ORDER BY key: an output column by name, or 1-based SELECT position.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderKey {
    Column(ColRef),
    Position(usize),
}

/// One ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub key: OrderKey,
    pub asc: bool,
}

/// A parsed query, before name resolution.
///
/// `JOIN ... ON` clauses are folded into `from` + `filter` by the parser:
/// the binder and planner see one uniform conjunction and re-derive join
/// structure from equality predicates, which is exactly what makes comma
/// joins and explicit JOIN syntax plan identically.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub projection: Projection,
    pub from: Vec<TableRef>,
    /// WHERE plus every JOIN ... ON condition, as written.
    pub filter: Vec<AstExpr>,
    pub group_by: Vec<ColRef>,
    pub order_by: Vec<OrderItem>,
}
