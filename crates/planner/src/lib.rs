//! SQL-ish query front end and statistics-free greedy planner.
//!
//! The paper feeds QPipe "precompiled query plans ... derived from a
//! commercial system's optimizer"; until now the workload crate played that
//! role by hand-assembling [`PlanNode`] trees — which meant two clients
//! phrasing the *same* query differently produced different signatures and
//! shared nothing. This crate closes that gap with a deliberately small
//! pipeline:
//!
//! * [`lexer`] / [`parser`] — a SQL-ish grammar (SELECT/FROM/WHERE/GROUP
//!   BY/ORDER BY, multi-way equi-joins via commas or `JOIN ... ON`,
//!   aggregates, `IN`/`LIKE 'prefix%'`/`IS NULL`, `DATE n` literals) parsed
//!   by recursive descent into a name-based [`ast::Query`]. Malformed input
//!   yields [`QError::Plan`] — never a panic.
//! * [`bind`] — resolves names against the catalog into expressions over a
//!   *global* column space (FROM tables concatenated in declared order).
//! * [`greedy`] — the planner: normalizes expressions ([`Expr::normalize`]),
//!   classifies conjuncts into per-table filters / equi-join edges /
//!   residuals, orders joins greedily by syntactic selectivity (no
//!   cardinality statistics), early-exits on provably-empty conjunctions,
//!   and emits left-deep [`PlanNode`] trees.
//!
//! Because every choice is deterministic and keyed on normalized forms,
//! syntactic variants of one logical query — commuted comparisons, shuffled
//! conjuncts, reordered FROM lists, comma joins vs. `JOIN ... ON` — all land
//! on the identical plan tree. That makes `plan.signature()` collide exactly
//! when the work is the same, which is what lets OSP attach in-flight
//! packets and the result cache answer repeats across differently-phrased
//! clients (the paper's §4.3 overlap check, extended to ad-hoc text).
//!
//! [`PlanNode`]: qpipe_exec::plan::PlanNode
//! [`Expr::normalize`]: qpipe_exec::expr::Expr::normalize
//! [`QError::Plan`]: qpipe_common::QError::Plan

pub mod ast;
pub mod bind;
pub mod greedy;
pub mod lexer;
pub mod parser;

pub use bind::{bind, BoundQuery, SchemaProvider};
pub use greedy::{plan_bound, PlannedQuery, PlannerOptions};
pub use parser::parse;

use qpipe_common::QResult;

/// Parse, bind, and plan `sql` in one step — the entry point `qpipe-core`
/// wires behind `QPipe::submit_sql`.
pub fn plan_sql(
    schemas: &dyn SchemaProvider,
    sql: &str,
    opts: &PlannerOptions,
) -> QResult<PlannedQuery> {
    let query = parser::parse(sql)?;
    let bound = bind::bind(schemas, &query)?;
    greedy::plan_bound(&bound, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpipe_common::{DataType, Schema};
    use qpipe_exec::plan::PlanNode;
    use std::collections::HashMap;

    fn schemas() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert(
            "customer".into(),
            Schema::of(&[
                ("c_custkey", DataType::Int),
                ("c_nationkey", DataType::Int),
                ("c_name", DataType::Str),
            ]),
        );
        m.insert(
            "orders".into(),
            Schema::of(&[
                ("o_orderkey", DataType::Int),
                ("o_custkey", DataType::Int),
                ("o_orderdate", DataType::Date),
                ("o_totalprice", DataType::Float),
            ]),
        );
        m.insert(
            "lineitem".into(),
            Schema::of(&[
                ("l_orderkey", DataType::Int),
                ("l_quantity", DataType::Float),
                ("l_extendedprice", DataType::Float),
                ("l_shipdate", DataType::Date),
                ("l_returnflag", DataType::Str),
            ]),
        );
        m
    }

    fn plan(sql: &str) -> PlannedQuery {
        plan_sql(&schemas(), sql, &PlannerOptions::default()).unwrap()
    }

    #[test]
    fn single_table_filter_project() {
        let p = plan("SELECT l_orderkey, l_quantity FROM lineitem WHERE l_quantity >= 30");
        let PlanNode::Project { input, exprs } = p.plan.as_ref() else { panic!("{}", p.explain()) };
        assert_eq!(exprs.len(), 2);
        assert!(matches!(input.as_ref(), PlanNode::TableScan { predicate: Some(_), .. }));
    }

    #[test]
    fn select_star_single_table_is_bare_scan() {
        let p = plan("SELECT * FROM lineitem");
        assert!(matches!(p.plan.as_ref(), PlanNode::TableScan { predicate: None, .. }));
    }

    #[test]
    fn phrasing_variants_share_signature() {
        let canonical = plan(
            "SELECT l_orderkey FROM lineitem WHERE l_quantity >= 30 AND l_shipdate < DATE 1000",
        );
        for variant in [
            // Commuted comparisons.
            "SELECT l_orderkey FROM lineitem WHERE 30 <= l_quantity AND l_shipdate < DATE 1000",
            // Reordered conjuncts.
            "SELECT l_orderkey FROM lineitem WHERE l_shipdate < DATE 1000 AND l_quantity >= 30",
            // Foldable constant and date-as-int literal.
            "SELECT l_orderkey FROM lineitem WHERE l_quantity >= 20 + 10 AND l_shipdate < 1000",
            // Redundant true conjunct.
            "SELECT l_orderkey FROM lineitem WHERE l_quantity >= 30 AND l_shipdate < DATE 1000 AND 1 = 1",
        ] {
            assert_eq!(plan(variant).signature, canonical.signature, "variant: {variant}");
        }
    }

    #[test]
    fn join_phrasings_share_signature() {
        let canonical = plan(
            "SELECT o.o_orderkey FROM orders o, lineitem l \
             WHERE o.o_orderkey = l.l_orderkey AND l.l_quantity > 45",
        );
        for variant in [
            // JOIN ... ON syntax.
            "SELECT o.o_orderkey FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
             WHERE l.l_quantity > 45",
            // Reversed FROM order.
            "SELECT o.o_orderkey FROM lineitem l, orders o \
             WHERE l.l_quantity > 45 AND o.o_orderkey = l.l_orderkey",
            // Commuted join equality.
            "SELECT o.o_orderkey FROM orders o, lineitem l \
             WHERE l.l_orderkey = o.o_orderkey AND l.l_quantity > 45",
        ] {
            assert_eq!(plan(variant).signature, canonical.signature, "variant: {variant}");
        }
    }

    #[test]
    fn greedy_order_puts_most_selective_first() {
        // Equality on customer (score 8) beats a range on lineitem (3) and a
        // bare orders table (0).
        let p = plan(
            "SELECT c.c_name FROM lineitem l, orders o, customer c \
             WHERE l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey \
             AND c.c_nationkey = 7",
        );
        assert_eq!(p.join_order[0], "c");
        // And the chain is connected: orders joins customer, lineitem last.
        assert_eq!(p.join_order, vec!["c", "o", "l"]);
    }

    #[test]
    fn provably_empty_short_circuits() {
        let p = plan(
            "SELECT o.o_orderkey FROM orders o, lineitem l \
             WHERE o.o_orderkey = l.l_orderkey AND o.o_totalprice > 10.0 \
             AND o.o_totalprice < 5.0",
        );
        assert!(p.provably_empty);
        assert!(p.join_order.is_empty());
        // The empty pipeline never joins: only one table is referenced.
        assert_eq!(p.plan.tables(), vec!["orders".to_string()]);
    }

    #[test]
    fn aggregate_dedup_and_select_order() {
        // SUM(l_quantity) appears twice; the aggregate computes it once and a
        // projection fans it back out in SELECT order.
        let p = plan(
            "SELECT COUNT(*), SUM(l_quantity), l_returnflag, SUM(l_quantity) \
             FROM lineitem GROUP BY l_returnflag",
        );
        let PlanNode::Project { input, exprs } = p.plan.as_ref() else { panic!("{}", p.explain()) };
        assert_eq!(exprs.len(), 4);
        let PlanNode::Aggregate { aggs, group_by, .. } = input.as_ref() else { panic!() };
        assert_eq!(aggs.len(), 2, "duplicate SUM deduplicated");
        assert_eq!(group_by.len(), 1);
        // Items 1 and 3 (the two SUMs) project the same aggregate column.
        assert_eq!(exprs[1], exprs[3]);
    }

    #[test]
    fn order_by_lands_on_top() {
        let p = plan(
            "SELECT l_returnflag, SUM(l_quantity) AS qty FROM lineitem \
             GROUP BY l_returnflag ORDER BY qty DESC",
        );
        let PlanNode::Sort { keys, .. } = p.plan.as_ref() else { panic!("{}", p.explain()) };
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].col, 1);
        assert!(!keys[0].asc);
    }

    #[test]
    fn raw_mode_preserves_join_order_differences() {
        // Expression-level phrasing is normalized by `signature()` itself
        // (that pass benefits hand-built plans too), so the raw-vs-canonical
        // planner baseline shows up in plan *shape*: raw mode joins in
        // declared FROM order, so swapping the FROM list changes the tree.
        let opts = PlannerOptions { canonicalize: false };
        let sql_a = "SELECT o.o_orderkey FROM orders o, lineitem l \
                     WHERE o.o_orderkey = l.l_orderkey AND l.l_quantity > 45";
        let sql_b = "SELECT o.o_orderkey FROM lineitem l, orders o \
                     WHERE o.o_orderkey = l.l_orderkey AND l.l_quantity > 45";
        let a = plan_sql(&schemas(), sql_a, &opts).unwrap();
        let b = plan_sql(&schemas(), sql_b, &opts).unwrap();
        assert_ne!(a.signature, b.signature, "raw mode keeps declared join order");
        assert_eq!(a.join_order, vec!["o", "l"]);
        assert_eq!(b.join_order, vec!["l", "o"]);
        // The canonical planner erases exactly that difference.
        let ca = plan_sql(&schemas(), sql_a, &PlannerOptions::default()).unwrap();
        let cb = plan_sql(&schemas(), sql_b, &PlannerOptions::default()).unwrap();
        assert_eq!(ca.signature, cb.signature);
    }

    #[test]
    fn errors_never_panic() {
        for bad in [
            "SELECT * FROM missing_table",
            "SELECT nope FROM lineitem",
            "SELECT * FROM lineitem WHERE",
            "SELECT l_orderkey, COUNT(*) FROM lineitem",
            "DELETE FROM lineitem",
        ] {
            assert!(plan_sql(&schemas(), bad, &PlannerOptions::default()).is_err(), "{bad}");
        }
    }
}
