//! Tokenizer for the SQL-ish query language.
//!
//! Produces a flat token stream with byte offsets so parse errors can point
//! at the offending position. Keywords are not distinguished here — the
//! parser matches identifiers case-insensitively, which keeps the lexer a
//! trivial one-pass scanner.

use qpipe_common::{QError, QResult};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Bare word: identifier or keyword (parser decides, case-insensitively).
    Ident(String),
    Int(i64),
    Float(f64),
    /// Single-quoted string literal ('' escapes a quote).
    Str(String),
    Comma,
    LParen,
    RParen,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A token plus the byte offset where it starts.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub at: usize,
}

fn err(msg: impl Into<String>, at: usize) -> QError {
    QError::Plan(format!("parse error at byte {at}: {}", msg.into()))
}

/// Tokenize `input`, rejecting anything outside the language's alphabet.
pub fn lex(input: &str) -> QResult<Vec<SpannedTok>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let at = i;
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
                continue;
            }
            b',' => out.push(SpannedTok { tok: Tok::Comma, at }),
            b'(' => out.push(SpannedTok { tok: Tok::LParen, at }),
            b')' => out.push(SpannedTok { tok: Tok::RParen, at }),
            b'.' => out.push(SpannedTok { tok: Tok::Dot, at }),
            b'*' => out.push(SpannedTok { tok: Tok::Star, at }),
            b'+' => out.push(SpannedTok { tok: Tok::Plus, at }),
            b'-' => out.push(SpannedTok { tok: Tok::Minus, at }),
            b'/' => out.push(SpannedTok { tok: Tok::Slash, at }),
            b'=' => out.push(SpannedTok { tok: Tok::Eq, at }),
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 1;
                    out.push(SpannedTok { tok: Tok::Le, at });
                } else if bytes.get(i + 1) == Some(&b'>') {
                    i += 1;
                    out.push(SpannedTok { tok: Tok::Ne, at });
                } else {
                    out.push(SpannedTok { tok: Tok::Lt, at });
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 1;
                    out.push(SpannedTok { tok: Tok::Ge, at });
                } else {
                    out.push(SpannedTok { tok: Tok::Gt, at });
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 1;
                    out.push(SpannedTok { tok: Tok::Ne, at });
                } else {
                    return Err(err("unexpected '!'", at));
                }
            }
            b'\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(err("unterminated string literal", at)),
                        Some(b'\'') => {
                            // '' is an escaped quote inside the literal.
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                break;
                            }
                        }
                        Some(&b) => {
                            // Strings are treated as raw bytes of the input;
                            // multi-byte UTF-8 passes through unmodified.
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(SpannedTok { tok: Tok::Str(s), at });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float =
                    i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit();
                if is_float {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &input[start..i];
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| err(format!("bad float literal {text:?}"), at))?;
                    out.push(SpannedTok { tok: Tok::Float(v), at });
                } else {
                    let text = &input[start..i];
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| err(format!("integer literal {text:?} out of range"), at))?;
                    out.push(SpannedTok { tok: Tok::Int(v), at });
                }
                continue;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(SpannedTok { tok: Tok::Ident(input[start..i].to_string()), at });
                continue;
            }
            _ => return Err(err(format!("unexpected character {:?}", c as char), at)),
        }
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_stream() {
        assert_eq!(
            toks("SELECT a, b FROM t WHERE a >= 1.5"),
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("a".into()),
                Tok::Comma,
                Tok::Ident("b".into()),
                Tok::Ident("FROM".into()),
                Tok::Ident("t".into()),
                Tok::Ident("WHERE".into()),
                Tok::Ident("a".into()),
                Tok::Ge,
                Tok::Float(1.5),
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into())]);
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<> != <= >= < >"),
            vec![Tok::Ne, Tok::Ne, Tok::Le, Tok::Ge, Tok::Lt, Tok::Gt]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a ; b").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn qualified_and_numeric() {
        assert_eq!(
            toks("t.c1 * 2.25"),
            vec![
                Tok::Ident("t".into()),
                Tok::Dot,
                Tok::Ident("c1".into()),
                Tok::Star,
                Tok::Float(2.25),
            ]
        );
    }
}
