//! Name resolution: AST → bound expressions over a *global* column space.
//!
//! The binder concatenates the FROM tables' schemas in declared order and
//! resolves every column reference to an index in that global layout. The
//! greedy planner later chooses its own join order and remaps global indices
//! onto the actual plan layout — keeping "what the query means" (binding)
//! separate from "how it runs" (planning).
//!
//! Date literals need no coercion: `Value` compares and hashes dates through
//! their integer embedding, so `o_orderdate < 1000` and `< DATE 1000` are
//! already the same predicate.

use crate::ast::*;
use qpipe_common::{QError, QResult, Schema, Value};
use qpipe_exec::expr::Expr;
use qpipe_exec::plan::AggSpec;

/// Source of table schemas — [`Catalog`] in production, a plain map in tests.
///
/// [`Catalog`]: qpipe_storage::Catalog
pub trait SchemaProvider {
    fn table_schema(&self, name: &str) -> QResult<Schema>;
}

impl SchemaProvider for qpipe_storage::Catalog {
    fn table_schema(&self, name: &str) -> QResult<Schema> {
        Ok(self.table(name)?.schema.clone())
    }
}

impl SchemaProvider for std::collections::HashMap<String, Schema> {
    fn table_schema(&self, name: &str) -> QResult<Schema> {
        self.get(name).cloned().ok_or_else(|| QError::NotFound(format!("table {name}")))
    }
}

/// One FROM table with its slot in the declared global layout.
#[derive(Debug, Clone)]
pub struct BoundTable {
    /// Catalog table name.
    pub table: String,
    /// Name it binds to in scope (alias if given).
    pub binding: String,
    pub schema: Schema,
    /// First global column index of this table.
    pub offset: usize,
}

impl BoundTable {
    pub fn width(&self) -> usize {
        self.schema.len()
    }

    /// Does global column `g` belong to this table?
    pub fn owns(&self, g: usize) -> bool {
        g >= self.offset && g < self.offset + self.width()
    }
}

/// One output column of the query.
#[derive(Debug, Clone)]
pub enum BoundItem {
    /// Scalar expression over global column indices.
    Expr(Expr),
    /// Aggregate over global column indices.
    Agg(AggSpec),
}

/// A fully resolved query, ready for the planner.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    pub tables: Vec<BoundTable>,
    /// Flattened WHERE/ON conjuncts over global indices, as written.
    pub conjuncts: Vec<Expr>,
    /// SELECT list (Star expanded to every global column in declared order).
    pub items: Vec<BoundItem>,
    /// GROUP BY as global indices, in written order.
    pub group_by: Vec<usize>,
    /// ORDER BY as (output position, ascending).
    pub order_by: Vec<(usize, bool)>,
}

impl BoundQuery {
    /// Total width of the declared global layout.
    pub fn global_width(&self) -> usize {
        self.tables.iter().map(|t| t.width()).sum()
    }

    pub fn has_aggregates(&self) -> bool {
        !self.group_by.is_empty() || self.items.iter().any(|i| matches!(i, BoundItem::Agg(_)))
    }
}

fn plan_err(msg: impl Into<String>) -> QError {
    QError::Plan(format!("bind error: {}", msg.into()))
}

/// Resolve `query` against `schemas`.
pub fn bind(schemas: &dyn SchemaProvider, query: &Query) -> QResult<BoundQuery> {
    // FROM: resolve schemas, assign global offsets, reject duplicate bindings.
    let mut tables: Vec<BoundTable> = Vec::with_capacity(query.from.len());
    let mut offset = 0;
    for tref in &query.from {
        let binding = tref.binding().to_string();
        if tables.iter().any(|t| t.binding.eq_ignore_ascii_case(&binding)) {
            return Err(plan_err(format!(
                "duplicate table binding {binding:?} (alias each occurrence)"
            )));
        }
        let schema = schemas.table_schema(&tref.table)?;
        let width = schema.len();
        tables.push(BoundTable { table: tref.table.clone(), binding, schema, offset });
        offset += width;
    }

    let b = Binder { tables: &tables };

    // WHERE/ON conjuncts, flattened one level (the planner re-flattens after
    // normalization anyway; this just keeps written conjuncts addressable).
    let mut conjuncts = Vec::new();
    for f in &query.filter {
        match f {
            AstExpr::And(parts) => {
                for p in parts {
                    conjuncts.push(b.expr(p)?);
                }
            }
            _ => conjuncts.push(b.expr(f)?),
        }
    }

    // SELECT list.
    let items: Vec<BoundItem> = match &query.projection {
        Projection::Star => (0..offset).map(|g| BoundItem::Expr(Expr::Col(g))).collect(),
        Projection::Items(items) => items
            .iter()
            .map(|item| match item {
                SelectItem::Expr { expr, .. } => Ok(BoundItem::Expr(b.expr(expr)?)),
                SelectItem::Agg { func, expr, .. } => {
                    let e = match expr {
                        None => Expr::Lit(Value::Int(1)),
                        Some(e) => b.expr(e)?,
                    };
                    Ok(BoundItem::Agg(AggSpec { func: *func, expr: e }))
                }
            })
            .collect::<QResult<_>>()?,
    };

    // GROUP BY: global indices; every non-aggregate SELECT item must be a
    // grouped column (the engine's Aggregate only outputs keys + aggregates).
    let group_by: Vec<usize> = query.group_by.iter().map(|c| b.col(c)).collect::<QResult<_>>()?;
    let aggregated = !group_by.is_empty() || items.iter().any(|i| matches!(i, BoundItem::Agg(_)));
    if aggregated {
        for item in &items {
            if let BoundItem::Expr(e) = item {
                match e {
                    Expr::Col(g) if group_by.contains(g) => {}
                    _ => {
                        return Err(plan_err("non-aggregate SELECT items must be GROUP BY columns"))
                    }
                }
            }
        }
    }

    // ORDER BY: resolve to output positions.
    let mut order_by = Vec::with_capacity(query.order_by.len());
    for o in &query.order_by {
        let pos = match &o.key {
            OrderKey::Position(p) => {
                if *p > items.len() {
                    return Err(plan_err(format!(
                        "ORDER BY position {p} exceeds SELECT width {}",
                        items.len()
                    )));
                }
                p - 1
            }
            OrderKey::Column(c) => resolve_order_column(&b, query, &items, c)?,
        };
        order_by.push((pos, o.asc));
    }

    Ok(BoundQuery { tables, conjuncts, items, group_by, order_by })
}

/// An ORDER BY name resolves to: a SELECT alias, else a column that appears
/// as its own SELECT item, else (for `SELECT *`) its global position.
fn resolve_order_column(
    b: &Binder<'_>,
    query: &Query,
    items: &[BoundItem],
    c: &ColRef,
) -> QResult<usize> {
    if let Projection::Items(sel) = &query.projection {
        if c.qualifier.is_none() {
            if let Some(i) = sel
                .iter()
                .position(|it| it.alias().is_some_and(|a| a.eq_ignore_ascii_case(&c.name)))
            {
                return Ok(i);
            }
        }
    }
    let g = b.col(c)?;
    if let Some(i) =
        items.iter().position(|it| matches!(it, BoundItem::Expr(Expr::Col(x)) if *x == g))
    {
        return Ok(i);
    }
    Err(plan_err(format!("ORDER BY column {:?} is not in the SELECT list", c.name)))
}

struct Binder<'a> {
    tables: &'a [BoundTable],
}

impl Binder<'_> {
    /// Resolve a column reference to its global index.
    fn col(&self, c: &ColRef) -> QResult<usize> {
        match &c.qualifier {
            Some(q) => {
                let t = self
                    .tables
                    .iter()
                    .find(|t| t.binding.eq_ignore_ascii_case(q))
                    .ok_or_else(|| plan_err(format!("unknown table {q:?}")))?;
                let i = index_of_ci(&t.schema, &c.name)
                    .ok_or_else(|| plan_err(format!("table {q:?} has no column {:?}", c.name)))?;
                Ok(t.offset + i)
            }
            None => {
                let mut hit = None;
                for t in self.tables {
                    if let Some(i) = index_of_ci(&t.schema, &c.name) {
                        if hit.is_some() {
                            return Err(plan_err(format!("ambiguous column {:?}", c.name)));
                        }
                        hit = Some(t.offset + i);
                    }
                }
                hit.ok_or_else(|| plan_err(format!("unknown column {:?}", c.name)))
            }
        }
    }

    fn expr(&self, e: &AstExpr) -> QResult<Expr> {
        Ok(match e {
            AstExpr::Column(c) => Expr::Col(self.col(c)?),
            AstExpr::Literal(l) => Expr::Lit(lit_value(l)),
            AstExpr::Cmp(op, a, b) => {
                Expr::Cmp(*op, Box::new(self.expr(a)?), Box::new(self.expr(b)?))
            }
            AstExpr::And(parts) => {
                Expr::And(parts.iter().map(|p| self.expr(p)).collect::<QResult<_>>()?)
            }
            AstExpr::Or(parts) => {
                Expr::Or(parts.iter().map(|p| self.expr(p)).collect::<QResult<_>>()?)
            }
            AstExpr::Not(e) => Expr::Not(Box::new(self.expr(e)?)),
            AstExpr::Arith(op, a, b) => {
                Expr::Arith(*op, Box::new(self.expr(a)?), Box::new(self.expr(b)?))
            }
            AstExpr::InList(e, list) => {
                Expr::In(Box::new(self.expr(e)?), list.iter().map(lit_value).collect())
            }
            AstExpr::IsNull(e) => Expr::IsNull(Box::new(self.expr(e)?)),
            AstExpr::Like(e, prefix) => Expr::StartsWith(Box::new(self.expr(e)?), prefix.clone()),
        })
    }
}

/// Case-insensitive column lookup (SQL identifiers are caseless here).
fn index_of_ci(schema: &Schema, name: &str) -> Option<usize> {
    schema.columns().iter().position(|c| c.name.eq_ignore_ascii_case(name))
}

fn lit_value(l: &Lit) -> Value {
    match l {
        Lit::Int(v) => Value::Int(*v),
        Lit::Float(v) => Value::Float(*v),
        Lit::Str(s) => Value::str(s),
        Lit::Null => Value::Null,
        // Out-of-range day numbers keep integer form; dates compare through
        // their integer embedding anyway, so semantics are unchanged.
        Lit::Date(d) => match i32::try_from(*d) {
            Ok(d) => Value::Date(d),
            Err(_) => Value::Int(*d),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use qpipe_common::DataType;
    use std::collections::HashMap;

    fn schemas() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert(
            "orders".into(),
            Schema::of(&[
                ("o_orderkey", DataType::Int),
                ("o_custkey", DataType::Int),
                ("o_orderdate", DataType::Date),
            ]),
        );
        m.insert(
            "lineitem".into(),
            Schema::of(&[
                ("l_orderkey", DataType::Int),
                ("l_quantity", DataType::Float),
                ("l_shipdate", DataType::Date),
            ]),
        );
        m
    }

    fn bind_sql(sql: &str) -> QResult<BoundQuery> {
        bind(&schemas(), &parse(sql)?)
    }

    #[test]
    fn global_offsets_span_tables() {
        let b = bind_sql(
            "SELECT o.o_orderkey, l.l_quantity FROM orders o, lineitem l \
             WHERE o.o_orderkey = l.l_orderkey",
        )
        .unwrap();
        assert_eq!(b.tables[0].offset, 0);
        assert_eq!(b.tables[1].offset, 3);
        assert_eq!(b.global_width(), 6);
        // l_quantity is global column 4.
        let BoundItem::Expr(Expr::Col(g)) = &b.items[1] else { panic!() };
        assert_eq!(*g, 4);
        assert_eq!(b.conjuncts.len(), 1);
    }

    #[test]
    fn unqualified_names_resolve_when_unambiguous() {
        let b = bind_sql("SELECT o_custkey FROM orders, lineitem WHERE o_orderkey = l_orderkey")
            .unwrap();
        let BoundItem::Expr(Expr::Col(1)) = &b.items[0] else { panic!() };
        // Both tables have a *date column but distinct names, so no clash.
        assert!(bind_sql("SELECT o_orderkey FROM orders, orders").is_err());
    }

    #[test]
    fn star_expands_declared_order() {
        let b = bind_sql("SELECT * FROM lineitem, orders").unwrap();
        assert_eq!(b.items.len(), 6);
        let BoundItem::Expr(Expr::Col(0)) = &b.items[0] else { panic!() };
    }

    #[test]
    fn aggregate_rules() {
        let b =
            bind_sql("SELECT o_custkey, COUNT(*), SUM(o_orderkey) FROM orders GROUP BY o_custkey")
                .unwrap();
        assert_eq!(b.group_by, vec![1]);
        assert!(b.has_aggregates());
        // Non-grouped scalar in an aggregate query is rejected.
        assert!(bind_sql("SELECT o_orderkey, COUNT(*) FROM orders GROUP BY o_custkey").is_err());
    }

    #[test]
    fn order_by_resolution() {
        let b = bind_sql(
            "SELECT o_custkey, COUNT(*) AS n FROM orders GROUP BY o_custkey ORDER BY n DESC, 1",
        )
        .unwrap();
        assert_eq!(b.order_by, vec![(1, false), (0, true)]);
        assert!(bind_sql("SELECT o_custkey FROM orders ORDER BY o_orderdate").is_err());
        assert!(bind_sql("SELECT o_custkey FROM orders ORDER BY 5").is_err());
    }

    #[test]
    fn bind_errors() {
        assert!(bind_sql("SELECT * FROM nope").is_err());
        assert!(bind_sql("SELECT zzz FROM orders").is_err());
        assert!(bind_sql("SELECT x.o_orderkey FROM orders o").is_err());
        assert!(bind_sql("SELECT o_orderkey FROM orders o, orders o").is_err());
    }
}
