//! Statistics-free greedy planning.
//!
//! The planner never consults cardinality statistics. Selectivity is read
//! off the *syntax* of each table's local predicates (an equality pins more
//! than a range bound, a range bound more than a bare expression), the most
//! selective pattern is joined first, and provably-empty conjunctions
//! (detected by [`Expr::normalize`]'s constant folding and interval
//! contradiction check) short-circuit to an empty plan without touching the
//! joins at all. This trades optimality for planning speed and — the QPipe
//! payoff — *determinism*: every phrasing of the same logical query lands on
//! the same plan tree, so `PlanNode::signature()` matches and OSP/result-
//! cache sharing fires across clients that phrase the query differently.
//!
//! Join construction is left-deep with the accumulated side as the hash
//! build side; the canonical equi-join key for a step is the lexicographically
//! smallest `(accumulated position, next-table column)` edge, and any further
//! equality edges become post-join filters.

use crate::bind::{BoundItem, BoundQuery};
use qpipe_common::{QError, QResult, Value};
use qpipe_exec::expr::{CmpOp, Expr};
use qpipe_exec::plan::{AggSpec, PlanNode, SortKey};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Planner knobs.
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// Normalize expressions and choose the canonical greedy join order.
    /// `false` plans in written/declared order with expressions as-written —
    /// the "no canonicalization" baseline the harness A/Bs against.
    pub canonicalize: bool,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        Self { canonicalize: true }
    }
}

/// A planned query.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    pub plan: Arc<PlanNode>,
    /// `plan.signature()`, precomputed.
    pub signature: u64,
    /// Table bindings in the join order the planner chose.
    pub join_order: Vec<String>,
    /// The WHERE clause was proven unsatisfiable at plan time; the plan is a
    /// constant-empty pipeline that still honors aggregate semantics.
    pub provably_empty: bool,
}

impl PlannedQuery {
    pub fn explain(&self) -> String {
        self.plan.explain()
    }
}

fn plan_err(msg: impl Into<String>) -> QError {
    QError::Plan(format!("plan error: {}", msg.into()))
}

/// Plan a bound query.
pub fn plan_bound(bound: &BoundQuery, opts: &PlannerOptions) -> QResult<PlannedQuery> {
    if bound.tables.is_empty() {
        return Err(plan_err("query references no tables"));
    }

    // 1. The conjunct pool. Canonical mode normalizes the whole conjunction
    // first: folds constants, orders conjuncts, and detects contradictions.
    let (conjuncts, provably_empty) = if opts.canonicalize {
        let whole = Expr::and(bound.conjuncts.clone()).normalize();
        if whole.is_const_false() {
            (Vec::new(), true)
        } else {
            match whole {
                Expr::And(parts) => (parts, false),
                e if e.is_const_true() => (Vec::new(), false),
                e => (vec![e], false),
            }
        }
    } else {
        (bound.conjuncts.clone(), false)
    };

    if provably_empty {
        let plan = empty_pipeline(bound, opts)?;
        let signature = plan.signature();
        return Ok(PlannedQuery {
            plan: Arc::new(plan),
            signature,
            join_order: Vec::new(),
            provably_empty: true,
        });
    }

    // 2. Classify conjuncts: per-table local predicates, cross-table equality
    // edges, and residual (anything else spanning several tables).
    let n = bound.tables.len();
    let table_of = |g: usize| -> usize {
        bound.tables.iter().position(|t| t.owns(g)).expect("bound column in range")
    };
    let mut local: Vec<Vec<Expr>> = vec![Vec::new(); n];
    let mut edges: Vec<JoinEdge> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    for c in conjuncts {
        let mut cols = Vec::new();
        c.collect_cols(&mut cols);
        let tset: BTreeSet<usize> = cols.iter().map(|&g| table_of(g)).collect();
        match tset.len() {
            // Constant conjunct (only possible in raw mode): charge it to the
            // first table so it still filters.
            0 => local[0].push(c),
            1 => local[*tset.iter().next().unwrap()].push(c),
            2 => {
                if let Expr::Cmp(CmpOp::Eq, a, b) = &c {
                    if let (Expr::Col(ga), Expr::Col(gb)) = (a.as_ref(), b.as_ref()) {
                        edges.push(JoinEdge { a: *ga, b: *gb });
                        continue;
                    }
                }
                residual.push(c);
            }
            _ => residual.push(c),
        }
    }

    // 3. Base access paths, with local predicates pushed into the scans.
    let mut scans: Vec<PlanNode> = Vec::with_capacity(n);
    let mut scores: Vec<i64> = Vec::with_capacity(n);
    for (i, t) in bound.tables.iter().enumerate() {
        let parts: Vec<Expr> = local[i].iter().map(|e| e.map_cols(&|g| g - t.offset)).collect();
        scores.push(parts.iter().map(selectivity_score).sum());
        let pred = if parts.is_empty() {
            None
        } else {
            let p = Expr::and(parts);
            let p = if opts.canonicalize { p.normalize() } else { p };
            if p.is_const_false() {
                // A single table's predicate is unsatisfiable.
                let plan = empty_pipeline(bound, opts)?;
                let signature = plan.signature();
                return Ok(PlannedQuery {
                    plan: Arc::new(plan),
                    signature,
                    join_order: Vec::new(),
                    provably_empty: true,
                });
            }
            if p.is_const_true() {
                None
            } else {
                Some(p)
            }
        };
        scans.push(match pred {
            Some(p) => PlanNode::scan_filtered(&t.table, p),
            None => PlanNode::scan(&t.table),
        });
    }

    // 4. Join order: greedy most-selective-first in canonical mode, declared
    // order otherwise. Ties break on binding name, keeping order total.
    let order: Vec<usize> = if opts.canonicalize && n > 1 {
        greedy_order(bound, &scores, &edges)
    } else {
        (0..n).collect()
    };

    // 5. Left-deep join construction. `layout[g]` maps a global column index
    // to its position in the current intermediate's tuple layout.
    let mut layout: Vec<Option<usize>> = vec![None; bound.global_width()];
    let first = &bound.tables[order[0]];
    for i in 0..first.width() {
        layout[first.offset + i] = Some(i);
    }
    let mut joined: BTreeSet<usize> = BTreeSet::new();
    joined.insert(order[0]);
    let mut acc = scans[order[0]].clone();
    let mut acc_width = first.width();
    let mut edges_left = edges;
    let mut residual_left = residual;

    for &next in &order[1..] {
        let t = &bound.tables[next];
        // Equality edges connecting the joined set to `next`.
        let mut keys: Vec<(usize, usize)> = Vec::new(); // (acc pos, next local)
        edges_left.retain(|e| {
            for (x, y) in [(e.a, e.b), (e.b, e.a)] {
                if t.owns(y) && layout[x].is_some() {
                    keys.push((layout[x].unwrap(), y - t.offset));
                    return false;
                }
            }
            true
        });
        keys.sort_unstable();
        keys.dedup();
        if keys.is_empty() {
            // Disconnected: cross product via a constant-true nested loop.
            acc = PlanNode::NestedLoopJoin {
                left: Arc::new(acc),
                right: Arc::new(scans[next].clone()),
                predicate: Expr::Lit(Value::Int(1)),
            };
        } else {
            let (lk, rk) = keys[0];
            acc = acc.hash_join(scans[next].clone(), lk, rk);
        }
        // Extend the layout with `next`'s columns.
        for i in 0..t.width() {
            layout[t.offset + i] = Some(acc_width + i);
        }
        // Surplus equality edges become filters over the joined layout.
        let mut post: Vec<Expr> =
            keys.iter().skip(1).map(|&(l, r)| Expr::col(l).eq(Expr::col(acc_width + r))).collect();
        acc_width += t.width();
        joined.insert(next);
        // Residual conjuncts apply as soon as every referenced table joined.
        residual_left.retain(|e| {
            let mut cols = Vec::new();
            e.collect_cols(&mut cols);
            if cols.iter().all(|&g| layout[g].is_some()) {
                post.push(e.map_cols(&|g| layout[g].expect("checked")));
                false
            } else {
                true
            }
        });
        if !post.is_empty() {
            let p = Expr::and(post);
            let p = if opts.canonicalize { p.normalize() } else { p };
            if !p.is_const_true() {
                acc = acc.filter(p);
            }
        }
    }
    debug_assert!(edges_left.is_empty() && residual_left.is_empty());

    // 6. Output stage over the final layout.
    let remap = |e: &Expr| e.map_cols(&|g| layout[g].expect("column joined"));
    let plan = output_stage(bound, opts, acc, &remap)?;
    let signature = plan.signature();
    Ok(PlannedQuery {
        plan: Arc::new(plan),
        signature,
        join_order: order.iter().map(|&i| bound.tables[i].binding.clone()).collect(),
        provably_empty: false,
    })
}

/// Aggregate / project / sort layers shared by the normal and provably-empty
/// paths. `remap` carries expressions from global indices onto the input's
/// layout.
fn output_stage(
    bound: &BoundQuery,
    opts: &PlannerOptions,
    input: PlanNode,
    remap: &dyn Fn(&Expr) -> Expr,
) -> QResult<PlanNode> {
    let norm = |e: Expr| if opts.canonicalize { e.normalize() } else { e };
    let mut plan = input;

    if bound.has_aggregates() {
        let mut out_pos: Vec<usize> = Vec::with_capacity(bound.items.len());
        // Canonical aggregate: group columns sorted ascending, aggregate
        // specs sorted by signature and deduplicated; a Project on top
        // restores the written SELECT order.
        let mut group_cols: Vec<usize> = bound
            .group_by
            .iter()
            .map(|&g| match remap(&Expr::Col(g)) {
                Expr::Col(p) => p,
                _ => unreachable!("remap maps columns to columns"),
            })
            .collect();
        if opts.canonicalize {
            group_cols.sort_unstable();
            group_cols.dedup();
        }
        let mut specs: Vec<AggSpec> = Vec::new();
        // Output position of each SELECT item, over [groups..., aggs...].
        for item in &bound.items {
            match item {
                BoundItem::Expr(e) => {
                    let Expr::Col(p) = remap(e) else {
                        return Err(plan_err("grouped SELECT items must be columns"));
                    };
                    let gi = group_cols
                        .iter()
                        .position(|&c| c == p)
                        .ok_or_else(|| plan_err("SELECT column not in GROUP BY"))?;
                    out_pos.push(gi);
                }
                BoundItem::Agg(a) => {
                    let spec = AggSpec { func: a.func, expr: norm(remap(&a.expr)) };
                    let ai = match specs.iter().position(|s| s == &spec) {
                        Some(i) => i,
                        None => {
                            specs.push(spec);
                            specs.len() - 1
                        }
                    };
                    out_pos.push(group_cols.len() + ai);
                }
            }
        }
        if opts.canonicalize && specs.len() > 1 {
            // Sort specs canonically, tracking where each lands.
            let mut idx: Vec<usize> = (0..specs.len()).collect();
            idx.sort_by_cached_key(|&i| {
                let mut buf = vec![specs[i].func as u8];
                specs[i].expr.encode_sig(&mut buf);
                buf
            });
            let inv: Vec<usize> = {
                let mut inv = vec![0; idx.len()];
                for (new, &old) in idx.iter().enumerate() {
                    inv[old] = new;
                }
                inv
            };
            specs = idx.iter().map(|&i| specs[i].clone()).collect();
            for p in out_pos.iter_mut() {
                if *p >= group_cols.len() {
                    *p = group_cols.len() + inv[*p - group_cols.len()];
                }
            }
        }
        plan = plan.aggregate(group_cols.clone(), specs.clone());
        // Restore SELECT order unless it already matches the agg output.
        let agg_width = group_cols.len() + specs.len();
        let identity =
            out_pos.len() == agg_width && out_pos.iter().enumerate().all(|(i, &p)| i == p);
        if !identity {
            plan = plan.project(out_pos.iter().map(|&p| Expr::col(p)).collect());
        }
    } else {
        let exprs: Vec<Expr> = bound
            .items
            .iter()
            .map(|item| match item {
                BoundItem::Expr(e) => norm(remap(e)),
                BoundItem::Agg(_) => unreachable!("no aggregates on this path"),
            })
            .collect();
        // Skip an identity projection over the full joined width (the join
        // of every FROM table always has `global_width` columns).
        let identity = exprs.len() == bound.global_width()
            && exprs.iter().enumerate().all(|(i, e)| matches!(e, Expr::Col(c) if *c == i));
        if !identity {
            plan = plan.project(exprs);
        }
    }

    if !bound.order_by.is_empty() {
        let keys: Vec<SortKey> =
            bound.order_by.iter().map(|&(pos, asc)| SortKey { col: pos, asc }).collect();
        plan = plan.sort(keys);
    }
    Ok(plan)
}

/// A plan that produces the declared global layout with zero rows, for
/// queries whose WHERE is unsatisfiable. Aggregate semantics still apply
/// (a no-group aggregate over zero rows emits its one NULL/zero row).
fn empty_pipeline(bound: &BoundQuery, opts: &PlannerOptions) -> QResult<PlanNode> {
    let base = PlanNode::scan_filtered(&bound.tables[0].table, Expr::Lit(Value::Int(0)))
        .project(vec![Expr::Lit(Value::Null); bound.global_width()]);
    // Identity remap: the projected layout is the declared global layout.
    output_stage(bound, opts, base, &|e: &Expr| e.clone())
}

#[derive(Debug, Clone, Copy)]
struct JoinEdge {
    a: usize,
    b: usize,
}

/// Syntactic selectivity score of one local conjunct — no statistics, just
/// predicate shape: equality pins hardest, then IN, prefix match, IS NULL,
/// individual range bounds, then anything else.
fn selectivity_score(e: &Expr) -> i64 {
    match e {
        Expr::Cmp(CmpOp::Eq, a, b) => {
            if matches!(a.as_ref(), Expr::Lit(_)) || matches!(b.as_ref(), Expr::Lit(_)) {
                8
            } else {
                2
            }
        }
        Expr::In(..) => 6,
        Expr::StartsWith(..) => 5,
        Expr::IsNull(_) => 4,
        Expr::Cmp(..) => 3,
        Expr::And(parts) => parts.iter().map(selectivity_score).sum(),
        _ => 1,
    }
}

/// Greedy join order: start from the highest-scored table, then repeatedly
/// take the highest-scored table connected by an equality edge to the set so
/// far; disconnected tables come last (cross products are the worst case no
/// matter the order). Ties break on binding name so the order is total —
/// determinism is what canonicalization rests on.
fn greedy_order(bound: &BoundQuery, scores: &[i64], edges: &[JoinEdge]) -> Vec<usize> {
    let n = bound.tables.len();
    let table_of = |g: usize| bound.tables.iter().position(|t| t.owns(g)).expect("in range");
    let better = |a: usize, b: usize| -> bool {
        (scores[a], std::cmp::Reverse(&bound.tables[a].binding))
            > (scores[b], std::cmp::Reverse(&bound.tables[b].binding))
    };
    let mut remaining: BTreeSet<usize> = (0..n).collect();
    let mut start = 0;
    for i in 1..n {
        if better(i, start) {
            start = i;
        }
    }
    remaining.remove(&start);
    let mut order = vec![start];
    while !remaining.is_empty() {
        let connected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                edges.iter().any(|e| {
                    let (ta, tb) = (table_of(e.a), table_of(e.b));
                    (ta == i && order.contains(&tb)) || (tb == i && order.contains(&ta))
                })
            })
            .collect();
        let pool = if connected.is_empty() {
            remaining.iter().copied().collect::<Vec<_>>()
        } else {
            connected
        };
        let mut pick = pool[0];
        for &i in &pool[1..] {
            if better(i, pick) {
                pick = i;
            }
        }
        remaining.remove(&pick);
        order.push(pick);
    }
    order
}
