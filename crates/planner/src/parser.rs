//! Recursive-descent parser.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query    := SELECT proj FROM tref ((',' tref) | (JOIN tref ON expr))*
//!             (WHERE expr)? (GROUP BY colref (',' colref)*)?
//!             (ORDER BY order (',' order)*)?
//! proj     := '*' | item (',' item)*
//! item     := agg | expr (AS? ident)?
//! agg      := (COUNT|SUM|AVG|MIN|MAX) '(' ('*' | expr) ')' (AS? ident)?
//! tref     := ident (AS? ident)?
//! expr     := and ( OR and )*
//! and      := not ( AND not )*
//! not      := NOT not | cmp
//! cmp      := add (cmpop add | IS NOT? NULL | NOT? BETWEEN add AND add
//!                  | NOT? IN '(' lit (',' lit)* ')' | NOT? LIKE str)?
//! add      := mul (('+'|'-') mul)*
//! mul      := unary (('*'|'/') unary)*
//! unary    := '-' unary | prim
//! prim     := lit | colref | '(' expr ')'
//! lit      := int | float | str | NULL | DATE int
//! colref   := ident ('.' ident)?
//! order    := (colref | int) (ASC|DESC)?
//! ```
//!
//! All errors are [`QError::Plan`] values with a byte offset — malformed
//! input never panics (the fuzz smoke job holds this line).

use crate::ast::*;
use crate::lexer::{lex, SpannedTok, Tok};
use qpipe_common::{QError, QResult};
use qpipe_exec::expr::{ArithOp, CmpOp};
use qpipe_exec::plan::AggFunc;

/// Parse one SELECT statement.
pub fn parse(sql: &str) -> QResult<Query> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, pos: 0, len: sql.len() };
    let q = p.query()?;
    if let Some(t) = p.peek() {
        return Err(p.err_at(t.at, "trailing input after query"));
    }
    Ok(q)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    len: usize,
}

// Keywords that terminate an expression or table list; identifiers by shape,
// reserved by convention so `FROM t WHERE` never parses WHERE as an alias.
const RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "AND", "OR", "NOT", "IN", "IS", "NULL",
    "LIKE", "BETWEEN", "AS", "JOIN", "ON", "ASC", "DESC", "DATE", "COUNT", "SUM", "AVG", "MIN",
    "MAX",
];

impl Parser {
    fn peek(&self) -> Option<&SpannedTok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<SpannedTok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at(&self) -> usize {
        self.peek().map_or(self.len, |t| t.at)
    }

    fn err_at(&self, at: usize, msg: impl Into<String>) -> QError {
        QError::Plan(format!("parse error at byte {at}: {}", msg.into()))
    }

    fn err(&self, msg: impl Into<String>) -> QError {
        self.err_at(self.at(), msg)
    }

    /// Consume `kw` (case-insensitive identifier) if next; true on match.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(SpannedTok { tok: Tok::Ident(s), .. }) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> QResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek().map(|t| &t.tok) == Some(tok) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> QResult<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    /// A non-reserved identifier (names and aliases).
    fn ident(&mut self, what: &str) -> QResult<String> {
        match self.peek() {
            Some(SpannedTok { tok: Tok::Ident(s), at }) => {
                if RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                    let (s, at) = (s.clone(), *at);
                    Err(self.err_at(at, format!("reserved word {s:?} cannot be {what}")))
                } else {
                    let s = s.clone();
                    self.pos += 1;
                    Ok(s)
                }
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn agg_kw(&self) -> Option<AggFunc> {
        if let Some(SpannedTok { tok: Tok::Ident(s), .. }) = self.peek() {
            // Only an aggregate when followed by '(' — keeps e.g. a column
            // named `min_qty` usable.
            if self.toks.get(self.pos + 1).map(|t| &t.tok) != Some(&Tok::LParen) {
                return None;
            }
            for (kw, f) in [
                ("COUNT", AggFunc::Count),
                ("SUM", AggFunc::Sum),
                ("AVG", AggFunc::Avg),
                ("MIN", AggFunc::Min),
                ("MAX", AggFunc::Max),
            ] {
                if s.eq_ignore_ascii_case(kw) {
                    return Some(f);
                }
            }
        }
        None
    }

    fn query(&mut self) -> QResult<Query> {
        self.expect_kw("SELECT")?;
        let projection = self.projection()?;
        self.expect_kw("FROM")?;
        let mut from = vec![self.table_ref()?];
        let mut filter = Vec::new();
        loop {
            if self.eat(&Tok::Comma) {
                from.push(self.table_ref()?);
            } else if self.eat_kw("JOIN") {
                from.push(self.table_ref()?);
                self.expect_kw("ON")?;
                filter.push(self.expr()?);
            } else {
                break;
            }
        }
        if self.eat_kw("WHERE") {
            filter.push(self.expr()?);
        }
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.col_ref()?);
            while self.eat(&Tok::Comma) {
                group_by.push(self.col_ref()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            order_by.push(self.order_item()?);
            while self.eat(&Tok::Comma) {
                order_by.push(self.order_item()?);
            }
        }
        Ok(Query { projection, from, filter, group_by, order_by })
    }

    fn projection(&mut self) -> QResult<Projection> {
        if self.eat(&Tok::Star) {
            return Ok(Projection::Star);
        }
        let mut items = vec![self.select_item()?];
        while self.eat(&Tok::Comma) {
            items.push(self.select_item()?);
        }
        Ok(Projection::Items(items))
    }

    fn select_item(&mut self) -> QResult<SelectItem> {
        if let Some(func) = self.agg_kw() {
            self.pos += 1; // the function keyword
            self.expect(&Tok::LParen, "'('")?;
            let expr = if matches!(func, AggFunc::Count) && self.eat(&Tok::Star) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&Tok::RParen, "')'")?;
            let func = if expr.is_none() { AggFunc::CountStar } else { func };
            let alias = self.opt_alias()?;
            return Ok(SelectItem::Agg { func, expr, alias });
        }
        let expr = self.expr()?;
        let alias = self.opt_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn opt_alias(&mut self) -> QResult<Option<String>> {
        if self.eat_kw("AS") {
            return Ok(Some(self.ident("an alias")?));
        }
        // Bare alias: a non-reserved identifier directly following.
        if let Some(SpannedTok { tok: Tok::Ident(s), .. }) = self.peek() {
            if !RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k))
                && self.toks.get(self.pos + 1).map(|t| &t.tok) != Some(&Tok::Dot)
            {
                let s = s.clone();
                self.pos += 1;
                return Ok(Some(s));
            }
        }
        Ok(None)
    }

    fn table_ref(&mut self) -> QResult<TableRef> {
        let table = self.ident("a table name")?;
        let alias = self.opt_alias()?;
        Ok(TableRef { table, alias })
    }

    fn col_ref(&mut self) -> QResult<ColRef> {
        let first = self.ident("a column name")?;
        if self.eat(&Tok::Dot) {
            let name = self.ident("a column name")?;
            Ok(ColRef { qualifier: Some(first), name })
        } else {
            Ok(ColRef { qualifier: None, name: first })
        }
    }

    fn order_item(&mut self) -> QResult<OrderItem> {
        let key = match self.peek().map(|t| t.tok.clone()) {
            Some(Tok::Int(n)) => {
                self.pos += 1;
                if n < 1 {
                    return Err(self.err("ORDER BY position must be >= 1"));
                }
                OrderKey::Position(n as usize)
            }
            _ => OrderKey::Column(self.col_ref()?),
        };
        let asc = if self.eat_kw("DESC") {
            false
        } else {
            self.eat_kw("ASC");
            true
        };
        Ok(OrderItem { key, asc })
    }

    fn expr(&mut self) -> QResult<AstExpr> {
        let mut parts = vec![self.and_expr()?];
        while self.eat_kw("OR") {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { AstExpr::Or(parts) })
    }

    fn and_expr(&mut self) -> QResult<AstExpr> {
        let mut parts = vec![self.not_expr()?];
        while self.eat_kw("AND") {
            parts.push(self.not_expr()?);
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { AstExpr::And(parts) })
    }

    fn not_expr(&mut self) -> QResult<AstExpr> {
        if self.eat_kw("NOT") {
            return Ok(AstExpr::Not(Box::new(self.not_expr()?)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> QResult<AstExpr> {
        let lhs = self.add_expr()?;
        let op = match self.peek().map(|t| &t.tok) {
            Some(Tok::Eq) => Some(CmpOp::Eq),
            Some(Tok::Ne) => Some(CmpOp::Ne),
            Some(Tok::Lt) => Some(CmpOp::Lt),
            Some(Tok::Le) => Some(CmpOp::Le),
            Some(Tok::Gt) => Some(CmpOp::Gt),
            Some(Tok::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            return Ok(AstExpr::Cmp(op, Box::new(lhs), Box::new(rhs)));
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            let test = AstExpr::IsNull(Box::new(lhs));
            return Ok(if negated { AstExpr::Not(Box::new(test)) } else { test });
        }
        let negated = self.eat_kw("NOT");
        if self.eat_kw("BETWEEN") {
            // Desugar to two range conjuncts so the planner sees the same
            // shape as a hand-written `lhs >= lo AND lhs <= hi` — pushdown,
            // pruning, and plan signatures need no BETWEEN-specific code.
            // Bounds are additive expressions: the AND here belongs to
            // BETWEEN, not to the boolean conjunction above it.
            let lo = self.add_expr()?;
            self.expect_kw("AND")?;
            let hi = self.add_expr()?;
            let range = AstExpr::And(vec![
                AstExpr::Cmp(CmpOp::Ge, Box::new(lhs.clone()), Box::new(lo)),
                AstExpr::Cmp(CmpOp::Le, Box::new(lhs), Box::new(hi)),
            ]);
            return Ok(if negated { AstExpr::Not(Box::new(range)) } else { range });
        }
        if self.eat_kw("IN") {
            self.expect(&Tok::LParen, "'('")?;
            let mut list = vec![self.literal()?];
            while self.eat(&Tok::Comma) {
                list.push(self.literal()?);
            }
            self.expect(&Tok::RParen, "')'")?;
            let test = AstExpr::InList(Box::new(lhs), list);
            return Ok(if negated { AstExpr::Not(Box::new(test)) } else { test });
        }
        if self.eat_kw("LIKE") {
            let at = self.at();
            let pat = match self.next().map(|t| t.tok) {
                Some(Tok::Str(s)) => s,
                _ => return Err(self.err_at(at, "LIKE requires a string literal")),
            };
            // Prefix patterns only: 'abc%' with no other wildcards.
            let prefix =
                pat.strip_suffix('%').filter(|p| !p.contains('%') && !p.contains('_')).ok_or_else(
                    || self.err_at(at, format!("only prefix LIKE patterns supported, got {pat:?}")),
                )?;
            let test = AstExpr::Like(Box::new(lhs), prefix.to_string());
            return Ok(if negated { AstExpr::Not(Box::new(test)) } else { test });
        }
        if negated {
            return Err(self.err("expected BETWEEN, IN, or LIKE after NOT"));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> QResult<AstExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.tok) {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = AstExpr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> QResult<AstExpr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().map(|t| &t.tok) {
                Some(Tok::Star) => ArithOp::Mul,
                Some(Tok::Slash) => ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = AstExpr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> QResult<AstExpr> {
        if self.eat(&Tok::Minus) {
            // Fold negation into numeric literals; otherwise 0 - e.
            return Ok(match self.unary()? {
                AstExpr::Literal(Lit::Int(v)) => AstExpr::Literal(Lit::Int(-v)),
                AstExpr::Literal(Lit::Float(v)) => AstExpr::Literal(Lit::Float(-v)),
                e => AstExpr::Arith(
                    ArithOp::Sub,
                    Box::new(AstExpr::Literal(Lit::Int(0))),
                    Box::new(e),
                ),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> QResult<AstExpr> {
        match self.peek().map(|t| t.tok.clone()) {
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::Int(_)) | Some(Tok::Float(_)) | Some(Tok::Str(_)) => {
                Ok(AstExpr::Literal(self.literal()?))
            }
            Some(Tok::Ident(s)) => {
                if s.eq_ignore_ascii_case("NULL") || s.eq_ignore_ascii_case("DATE") {
                    return Ok(AstExpr::Literal(self.literal()?));
                }
                Ok(AstExpr::Column(self.col_ref()?))
            }
            _ => Err(self.err("expected an expression")),
        }
    }

    fn literal(&mut self) -> QResult<Lit> {
        let neg = self.eat(&Tok::Minus);
        let at = self.at();
        let lit = match self.next().map(|t| t.tok) {
            Some(Tok::Int(v)) => Lit::Int(v),
            Some(Tok::Float(v)) => Lit::Float(v),
            Some(Tok::Str(s)) => Lit::Str(s),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("NULL") => Lit::Null,
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("DATE") => {
                match self.next().map(|t| t.tok) {
                    Some(Tok::Int(d)) => Lit::Date(d),
                    _ => return Err(self.err_at(at, "DATE requires an integer day number")),
                }
            }
            _ => return Err(self.err_at(at, "expected a literal")),
        };
        if neg {
            return match lit {
                Lit::Int(v) => Ok(Lit::Int(-v)),
                Lit::Float(v) => Ok(Lit::Float(-v)),
                _ => Err(self.err_at(at, "'-' applies to numeric literals only")),
            };
        }
        Ok(lit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let q = parse("SELECT * FROM lineitem").unwrap();
        assert_eq!(q.projection, Projection::Star);
        assert_eq!(q.from.len(), 1);
        assert!(q.filter.is_empty());
    }

    #[test]
    fn join_on_folds_into_filter() {
        let a =
            parse("SELECT * FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey").unwrap();
        let b =
            parse("SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey").unwrap();
        assert_eq!(a.from, b.from);
        assert_eq!(a.filter, b.filter);
    }

    #[test]
    fn aggregates_and_grouping() {
        let q = parse(
            "SELECT l_returnflag, SUM(l_quantity) qty, COUNT(*) FROM lineitem \
             GROUP BY l_returnflag ORDER BY 1 DESC",
        )
        .unwrap();
        let Projection::Items(items) = &q.projection else { panic!() };
        assert_eq!(items.len(), 3);
        assert_eq!(items[1].alias(), Some("qty"));
        assert!(matches!(items[2], SelectItem::Agg { func: AggFunc::CountStar, .. }));
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.order_by, vec![OrderItem { key: OrderKey::Position(1), asc: false }]);
    }

    #[test]
    fn predicates_parse() {
        let q = parse(
            "SELECT * FROM part WHERE p_type LIKE 'PROMO%' AND p_size IN (1, 5, 9) \
             AND p_retailprice >= 100.5 AND p_comment IS NOT NULL AND NOT p_size IN (2)",
        )
        .unwrap();
        assert_eq!(q.filter.len(), 1);
    }

    #[test]
    fn date_literals() {
        let q = parse("SELECT * FROM orders WHERE o_orderdate < DATE 1000").unwrap();
        let AstExpr::Cmp(CmpOp::Lt, _, rhs) = &q.filter[0] else { panic!() };
        assert_eq!(**rhs, AstExpr::Literal(Lit::Date(1000)));
    }

    #[test]
    fn errors_not_panics() {
        for bad in [
            "",
            "SELECT",
            "SELECT FROM t",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t WHERE a >",
            "SELECT * FROM t GROUP",
            "SELECT * FROM t ORDER BY 0",
            "SELECT * FROM t extra junk here",
            "SELECT a b c FROM t",
            "SELECT * FROM t WHERE a LIKE 'a%b%'",
            "SELECT * FROM t WHERE a IN ()",
            "SELECT * FROM t WHERE a NOT 5",
            "SELECT MIN() FROM t",
            "SELECT COUNT(* FROM t",
            "SELECT * FROM select",
        ] {
            let r = parse(bad);
            assert!(r.is_err(), "expected error for {bad:?}, got {r:?}");
        }
    }

    #[test]
    fn between_desugars_to_range_conjuncts() {
        let sugar = parse("SELECT * FROM t WHERE a BETWEEN 3 AND 7").unwrap();
        let plain = parse("SELECT * FROM t WHERE a >= 3 AND a <= 7").unwrap();
        assert_eq!(sugar.filter, plain.filter);
        // NOT BETWEEN negates the whole conjunction (range complement), and
        // binds tighter than boolean AND: `x NOT BETWEEN .. AND b > 1` keeps
        // `b > 1` a separate conjunct.
        let sugar = parse("SELECT * FROM t WHERE a NOT BETWEEN 3 AND 7 AND b > 1").unwrap();
        let plain = parse("SELECT * FROM t WHERE NOT (a >= 3 AND a <= 7) AND b > 1").unwrap();
        assert_eq!(sugar.filter, plain.filter);
        // Bounds are full additive expressions.
        let sugar = parse("SELECT * FROM t WHERE a BETWEEN b - 1 AND b + 1").unwrap();
        let plain = parse("SELECT * FROM t WHERE a >= b - 1 AND a <= b + 1").unwrap();
        assert_eq!(sugar.filter, plain.filter);
    }

    #[test]
    fn between_error_paths() {
        for bad in [
            "SELECT * FROM t WHERE a BETWEEN",
            "SELECT * FROM t WHERE a BETWEEN 3",
            "SELECT * FROM t WHERE a BETWEEN 3 AND",
            "SELECT * FROM t WHERE a BETWEEN 3 OR 7",
            "SELECT * FROM t WHERE a NOT BETWEEN 3 7",
            "SELECT * FROM between",
        ] {
            let r = parse(bad);
            assert!(r.is_err(), "expected error for {bad:?}, got {r:?}");
        }
    }

    #[test]
    fn negative_literals() {
        let q = parse("SELECT * FROM t WHERE a > -5 AND b IN (-1, 2)").unwrap();
        assert_eq!(q.filter.len(), 1);
    }
}
