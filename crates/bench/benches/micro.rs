//! Criterion micro-benchmarks for the QPipe building blocks and the
//! ablations DESIGN.md calls out:
//!
//! * buffer-pool replacement policies under a scan-heavy reference pattern,
//! * intermediate pipe throughput at fan-out 1 vs 4 (the broadcast cost of
//!   simultaneous pipelining),
//! * plan-signature computation + OSP registry lookup (the per-packet cost
//!   of run-time overlap detection — the paper's "negligible overhead"),
//! * sort and hash-join kernels over the storage substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpipe_common::colbatch::ColBatch;
use qpipe_common::{Batch, DataType, Metrics, Schema, Tuple, Value};
use qpipe_core::deadlock::{NodeId, WaitRegistry};
use qpipe_core::pipe::{Pipe, PipeConfig};
use qpipe_exec::expr::Expr;
use qpipe_exec::iter::{run, ExecContext};
use qpipe_exec::plan::{AggSpec, PlanNode, SortKey};
use qpipe_storage::{BufferPool, BufferPoolConfig, Catalog, DiskConfig, PolicyKind, SimDisk};
use std::sync::Arc;

fn pool_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("bufferpool_policy");
    for policy in
        [PolicyKind::Lru, PolicyKind::Clock, PolicyKind::LruK(2), PolicyKind::TwoQ, PolicyKind::Arc]
    {
        // Mixed pattern: repeated scans of 256 pages + a hot set of 16.
        let disk = SimDisk::new(DiskConfig::instant(), Metrics::new());
        let f = disk.create_file("t").unwrap();
        for _ in 0..256 {
            disk.append_block(f, qpipe_storage::Page::new()).unwrap();
        }
        let pool = BufferPool::new(disk, BufferPoolConfig::new(64, policy));
        g.bench_with_input(BenchmarkId::from_parameter(format!("{policy:?}")), &pool, |b, pool| {
            b.iter(|| {
                for i in 0..256u64 {
                    pool.get(f, i).unwrap();
                    if i % 4 == 0 {
                        pool.get(f, i % 16).unwrap();
                    }
                }
            })
        });
    }
    g.finish();
}

fn pipe_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipe_broadcast");
    for consumers in [1usize, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(consumers), &consumers, |b, &consumers| {
            b.iter(|| {
                let reg = Arc::new(WaitRegistry::new());
                let pipe = Pipe::new(PipeConfig { capacity: 64, backfill: 0 }, NodeId(1), reg);
                let sinks: Vec<_> = (0..consumers)
                    .map(|i| pipe.attach_consumer(NodeId(10 + i as u64), false))
                    .collect();
                let mut producer = pipe.producer();
                let handles: Vec<_> = sinks
                    .into_iter()
                    .map(|s| std::thread::spawn(move || s.collect_tuples().unwrap().len()))
                    .collect();
                for i in 0..20_000i64 {
                    producer.push(vec![Value::Int(i)]);
                }
                producer.finish();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
            })
        });
    }
    g.finish();
}

fn signature_and_lookup(c: &mut Criterion) {
    // The OSP coordinator's per-packet costs.
    let plan = PlanNode::scan_filtered("lineitem", Expr::col(4).ge(Expr::lit(10)))
        .hash_join(PlanNode::scan("orders"), 0, 0)
        .aggregate(vec![1], vec![AggSpec::count_star(), AggSpec::sum(Expr::col(2))])
        .sort(vec![SortKey::asc(0)]);
    c.bench_function("plan_signature", |b| b.iter(|| std::hint::black_box(&plan).signature()));

    let registry: Arc<qpipe_core::host::ShareRegistry> =
        Arc::new(qpipe_core::host::ShareRegistry::new());
    c.bench_function("osp_registry_miss_lookup", |b| {
        let sig = plan.signature();
        b.iter(|| registry.lookup(std::hint::black_box(sig)))
    });
}

fn exec_kernels(c: &mut Criterion) {
    let disk = SimDisk::new(DiskConfig::instant(), Metrics::new());
    let pool = BufferPool::new(disk.clone(), BufferPoolConfig::new(2048, PolicyKind::Lru));
    let catalog = Catalog::new(disk, pool);
    let n = 20_000i64;
    let rows: Vec<Tuple> =
        (0..n).map(|i| vec![Value::Int(i % 997), Value::Int(i), Value::Float(i as f64)]).collect();
    catalog
        .create_table(
            "t",
            Schema::of(&[("k", DataType::Int), ("id", DataType::Int), ("x", DataType::Float)]),
            rows,
            None,
        )
        .unwrap();
    let ctx = ExecContext::new(catalog);

    c.bench_function("sort_20k", |b| {
        let plan = PlanNode::scan("t").sort(vec![SortKey::asc(0), SortKey::desc(1)]);
        b.iter(|| run(&plan, &ctx).unwrap().len())
    });
    c.bench_function("hash_join_selfjoin_20k", |b| {
        let plan = PlanNode::scan("t").hash_join(PlanNode::scan("t"), 1, 1);
        b.iter(|| run(&plan, &ctx).unwrap().len())
    });
    c.bench_function("agg_groupby_20k", |b| {
        let plan = PlanNode::scan("t")
            .aggregate(vec![0], vec![AggSpec::count_star(), AggSpec::sum(Expr::col(2))]);
        b.iter(|| run(&plan, &ctx).unwrap().len())
    });
}

/// The shared-scan hot path in microcosm: one 256-row page filtered by a
/// per-consumer predicate — row-at-a-time `eval_bool` + `Tuple` clone (the
/// pre-vectorization scanner loop) vs `eval_filter` selection vector +
/// columnar gather. The acceptance bar for the vectorized path is ≥ 2×.
fn scan_filter(c: &mut Criterion) {
    let rows: Vec<Tuple> = (0..Batch::DEFAULT_CAPACITY as i64)
        .map(|i| {
            vec![
                Value::Int(i % 997),
                Value::Date((i % 730) as i32),
                Value::Float(i as f64 * 0.5),
                Value::str(if i % 3 == 0 { "widget-a" } else { "gadget-b" }),
            ]
        })
        .collect();
    let cols = ColBatch::from_rows(&rows);

    // ~50% selectivity integer comparison, ~50% date range, and the
    // conjunctive mix the fig12 random-predicate workload generates.
    let preds = [
        ("int_cmp", Expr::col(0).ge(Expr::lit(499))),
        (
            "date_cmp",
            Expr::Cmp(
                qpipe_exec::expr::CmpOp::Lt,
                Box::new(Expr::col(1)),
                Box::new(Expr::Lit(Value::Date(365))),
            ),
        ),
        (
            "conj_mix",
            Expr::and([
                Expr::col(0).ge(Expr::lit(200)),
                Expr::col(1).lt(Expr::lit(600)),
                Expr::StartsWith(Box::new(Expr::col(3)), "widget".into()),
            ]),
        ),
    ];

    let mut g = c.benchmark_group("scan_filter");
    for (name, pred) in &preds {
        g.bench_function(&format!("rowwise_{name}"), |b| {
            b.iter(|| {
                // The old scanner inner loop: per-tuple interpret + clone.
                let mut out: Vec<Tuple> = Vec::new();
                for t in &rows {
                    if pred.eval_bool(t).unwrap_or(false) {
                        out.push(t.clone());
                    }
                }
                out.len()
            })
        });
        g.bench_function(&format!("vectorized_{name}"), |b| {
            b.iter(|| {
                // The new scanner inner loop: kernel filter + gather.
                let sel = pred.eval_filter(&cols).unwrap();
                cols.gather(&sel).len()
            })
        });
    }
    g.finish();
}

/// The per-page cost the columnar page store removes: decoding one full
/// 256-row page for the shared scanner. The slotted path is what row tables
/// pay per page visit (tag-parsing tuple codec + column-ification); the
/// columnar path materializes the same `ColBatch` straight from the PAX
/// page's typed byte regions. Acceptance bar: columnar ≥ 3× faster.
fn page_decode(c: &mut Criterion) {
    use qpipe_storage::colpage::ColPageBuilder;
    use qpipe_storage::page::{encode_tuple, Page};

    let n = Batch::DEFAULT_CAPACITY; // 256 rows — one page in both layouts
    let schema =
        Schema::of(&[("k", DataType::Int), ("d", DataType::Date), ("mode", DataType::Str)]);
    let rows: Vec<Tuple> = (0..n as i64)
        .map(|i| {
            vec![
                Value::Int(i % 997),
                Value::Date((i % 730) as i32),
                Value::str(if i % 3 == 0 { "widget-a" } else { "gadget-b" }),
            ]
        })
        .collect();

    let mut slotted = Page::new();
    let mut buf = Vec::new();
    for r in &rows {
        buf.clear();
        encode_tuple(r, &mut buf);
        slotted.append_record(&buf).expect("256 rows fit one slotted page");
    }
    let mut builder = ColPageBuilder::new(&schema);
    for r in &rows {
        builder.append(r).expect("256 rows fit one columnar page");
    }
    let columnar = builder.finish();
    assert_eq!(slotted.num_records(), n);
    assert_eq!(columnar.num_rows(), n);

    let mut g = c.benchmark_group("page_decode");
    g.bench_function("slotted_decode", |b| {
        b.iter(|| {
            // Row-table scanner per-page cost: tuple codec, then column-ify.
            let tuples = slotted.decode_tuples().unwrap();
            ColBatch::from_rows(&tuples).len()
        })
    });
    g.bench_function("columnar_materialize", |b| {
        b.iter(|| {
            // Columnar-table scanner per-page cost: bulk region reads.
            columnar.decode().unwrap().len()
        })
    });
    g.finish();
}

/// The join/agg operator boundary: the row path ingests tuples one at a
/// time (what `PipeIter` used to hand every µEngine), the vectorized path
/// consumes the same data as 256-row `ColBatch`es (what the scanner actually
/// produces). Same build/probe and group/update work, same results — the
/// difference is the per-row materialization the vectorized operators
/// removed. Acceptance bar: vectorized ≥ 2× on both groups.
fn hash_join_paths(c: &mut Criterion) {
    use qpipe_exec::iter::{HashJoinIter, TupleIter, VecIter};
    use qpipe_exec::viter::HashJoinBuild;

    let left_n = 4096i64;
    let right_n = 16_384i64;
    let left: Vec<Tuple> = (0..left_n)
        .map(|i| vec![Value::Int(i % 512), Value::Int(i), Value::str("build-pay")])
        .collect();
    let right: Vec<Tuple> = (0..right_n)
        .map(|i| vec![Value::Int(i % 2048), Value::Float(i as f64), Value::str("probe-pay")])
        .collect();
    let chunk = Batch::DEFAULT_CAPACITY;
    let left_batches: Vec<ColBatch> = left.chunks(chunk).map(ColBatch::from_rows).collect();
    let right_batches: Vec<ColBatch> = right.chunks(chunk).map(ColBatch::from_rows).collect();

    // Row path needs an ExecContext for its (unused here) spill machinery.
    let disk = SimDisk::new(DiskConfig::instant(), Metrics::new());
    let pool = BufferPool::new(disk.clone(), BufferPoolConfig::new(64, PolicyKind::Lru));
    let ctx = ExecContext::new(Catalog::new(disk, pool));

    let mut g = c.benchmark_group("hash_join");
    g.bench_function("rowwise_build_probe", |b| {
        b.iter(|| {
            let mut it = HashJoinIter::new(
                Box::new(VecIter::new(left.clone())),
                Box::new(VecIter::new(right.clone())),
                0,
                0,
                ctx.clone(),
            );
            let mut n = 0usize;
            while it.next().unwrap().is_some() {
                n += 1;
            }
            n
        })
    });
    g.bench_function("vectorized_build_probe", |b| {
        b.iter(|| {
            let mut build = HashJoinBuild::new(0);
            for batch in &left_batches {
                assert!(build.add(batch));
            }
            let table = build.finish().unwrap();
            let mut n = 0usize;
            for batch in &right_batches {
                table.probe(batch, 0, chunk, |out| n += out.len()).unwrap();
            }
            n
        })
    });
    g.finish();
}

fn agg_update_paths(c: &mut Criterion) {
    use qpipe_exec::iter::{AggregateIter, TupleIter, VecIter};
    use qpipe_exec::viter::HashAgg;

    let n = 32_768i64;
    let rows: Vec<Tuple> = (0..n)
        .map(|i| vec![Value::Int(i % 64), Value::Int(i), Value::Float(i as f64 * 0.25)])
        .collect();
    let batches: Vec<ColBatch> =
        rows.chunks(Batch::DEFAULT_CAPACITY).map(ColBatch::from_rows).collect();
    let aggs = || {
        vec![
            AggSpec::count_star(),
            AggSpec::sum(Expr::col(2)),
            AggSpec::min(Expr::col(1)),
            AggSpec::avg(Expr::col(2)),
        ]
    };

    let mut g = c.benchmark_group("agg_update");
    g.bench_function("rowwise_groupby", |b| {
        b.iter(|| {
            let mut it = AggregateIter::new(Box::new(VecIter::new(rows.clone())), vec![0], aggs());
            let mut out = 0usize;
            while it.next().unwrap().is_some() {
                out += 1;
            }
            out
        })
    });
    g.bench_function("vectorized_groupby", |b| {
        b.iter(|| {
            let mut agg = HashAgg::new(vec![0], aggs());
            for batch in &batches {
                agg.update_cols(batch).unwrap();
            }
            agg.finish().len()
        })
    });
    g.finish();
}

/// The sort operator boundary: `SortIter` ingests tuples one at a time and
/// heap-merges tuple runs; `VecSort` accumulates the same data as 256-row
/// `ColBatch`es, sorts a key-column permutation, and gathers payload once
/// (spilled variants write/merge columnar vs row runs under a tiny budget).
/// Acceptance bar: vectorized ≥ 1.4× on both variants (measured ~1.6×; the
/// payload-gather-once structure, not the comparator, is the win — and in
/// the engine the vectorized path additionally skips the `PipeIter`
/// flattening this harness cannot charge to the row side).
fn sort_paths(c: &mut Criterion) {
    use qpipe_exec::iter::{SortIter, TupleIter, VecIter};
    use qpipe_exec::vsort::VecSort;

    let n = 32_768i64;
    let rows: Vec<Tuple> = (0..n)
        .map(|i| {
            vec![
                Value::Int((i * 2_654_435_761) % 997),
                Value::Int(i % 13),
                Value::Float(i as f64 * 0.25),
                Value::str("sort-payload"),
            ]
        })
        .collect();
    let batches: Vec<ColBatch> =
        rows.chunks(Batch::DEFAULT_CAPACITY).map(ColBatch::from_rows).collect();
    let keys = vec![SortKey::asc(0), SortKey::desc(1)];

    let ctx_with_budget = |budget: usize| {
        let disk = SimDisk::new(DiskConfig::instant(), Metrics::new());
        let pool = BufferPool::new(disk.clone(), BufferPoolConfig::new(64, PolicyKind::Lru));
        ExecContext::with_config(
            Catalog::new(disk, pool),
            qpipe_exec::iter::ExecConfig {
                sort_budget: budget,
                ..qpipe_exec::iter::ExecConfig::default()
            },
        )
    };

    let mut g = c.benchmark_group("sort_run");
    for (label, budget) in [("inmem", usize::MAX / 2), ("spill", 4096)] {
        let ctx = ctx_with_budget(budget);
        g.bench_function(&format!("rowwise_{label}"), |b| {
            b.iter(|| {
                let mut it =
                    SortIter::new(Box::new(VecIter::new(rows.clone())), keys.clone(), ctx.clone());
                let mut out = 0usize;
                while it.next().unwrap().is_some() {
                    out += 1;
                }
                out
            })
        });
        let ctx = ctx_with_budget(budget);
        g.bench_function(&format!("vectorized_{label}"), |b| {
            b.iter(|| {
                let mut vs = VecSort::new(&keys, ctx.clone());
                for batch in &batches {
                    assert!(vs.push_cols(batch).unwrap());
                }
                let mut out = 0usize;
                vs.finish(|b| {
                    out += b.len();
                    true
                })
                .unwrap();
                out
            })
        });
    }
    g.finish();
}

/// The filter/project µEngine boundary: the old workers pulled tuples
/// through `PipeIter` (flattening every columnar batch) and interpreted the
/// predicate/projection per row; the vectorized workers run
/// `eval_filter` + `gather` and `project_batch` per 256-row `ColBatch`.
/// Acceptance bar: vectorized ≥ 1.4× (measured ~1.7× with a computed
/// projection column; pure column-reference projections are `Arc` bumps and
/// score far higher).
fn filter_project_paths(c: &mut Criterion) {
    use qpipe_common::colbatch::SelVec;
    use qpipe_exec::vexpr::project_batch;

    let n = 32_768i64;
    let rows: Vec<Tuple> = (0..n)
        .map(|i| {
            vec![
                Value::Int(i % 997),
                Value::Float(i as f64 * 0.5),
                Value::Date((i % 730) as i32),
                Value::str(if i % 3 == 0 { "widget-a" } else { "gadget-b" }),
            ]
        })
        .collect();
    let batches: Vec<ColBatch> =
        rows.chunks(Batch::DEFAULT_CAPACITY).map(ColBatch::from_rows).collect();
    let pred = Expr::and([Expr::col(0).ge(Expr::lit(200)), Expr::col(2).lt(Expr::lit(600))]);
    let exprs = vec![Expr::col(3), Expr::col(0), Expr::col(1).mul(Expr::lit(2.0))];

    let mut g = c.benchmark_group("filter_project");
    g.bench_function("rowwise", |b| {
        b.iter(|| {
            // The old Filter→Project worker pair: per-tuple interpret + clone.
            let mut out = 0usize;
            for t in &rows {
                if pred.eval_bool(t).unwrap() {
                    let mut row = Vec::with_capacity(exprs.len());
                    for e in &exprs {
                        row.push(e.eval(t).unwrap());
                    }
                    out += row.len();
                }
            }
            out
        })
    });
    g.bench_function("vectorized", |b| {
        b.iter(|| {
            // The new workers: selection-vector filter, compacting gather,
            // column-at-a-time projection.
            let mut out = 0usize;
            for batch in &batches {
                let sel = pred.eval_filter(batch).unwrap();
                if sel.is_empty() {
                    continue;
                }
                let filtered = batch.gather(&sel);
                let projected =
                    project_batch(&exprs, &filtered, &SelVec::all(filtered.len())).unwrap();
                out += projected.len() * projected.num_cols();
            }
            out
        })
    });
    g.finish();
}

/// Morsel-driven shared scan (tentpole of the worker-pool refactor): one
/// circular scanner claims page-range morsels and fans the page work
/// (fetch + decode + predicate kernel) out to a task pool, delivering
/// serially in page order. Q1-shaped scan+filter over a columnar
/// lineitem-like table at 1/2/4/8 workers; `workers=1` is the pre-morsel
/// serial scanner. Acceptance bar: 4 workers beat 1 on wall-clock.
fn morsel_scan(c: &mut Criterion) {
    use qpipe_core::scan::{ScanConfig, ScanManager, ScanRequest};

    let n = 60_000i64;
    let metrics = Metrics::new();
    let disk = SimDisk::new(DiskConfig::instant(), metrics.clone());
    let pool = BufferPool::new(disk.clone(), BufferPoolConfig::new(512, PolicyKind::Lru));
    let catalog = Catalog::new(disk, pool);
    catalog
        .create_table_with_layout(
            "lineitem",
            Schema::of(&[
                ("l_orderkey", DataType::Int),
                ("l_quantity", DataType::Float),
                ("l_extendedprice", DataType::Float),
                ("l_discount", DataType::Float),
                ("l_tax", DataType::Float),
                ("l_shipdate", DataType::Date),
            ]),
            (0..n)
                .map(|i| {
                    vec![
                        Value::Int(i / 4),
                        Value::Float((i % 50) as f64 + 1.0),
                        Value::Float((i % 997) as f64 * 1.5),
                        Value::Float((i % 10) as f64 / 100.0),
                        Value::Float((i % 8) as f64 / 100.0),
                        Value::Date((i % 2526) as i32),
                    ]
                })
                .collect(),
            Some(0),
            qpipe_storage::StorageLayout::Columnar,
        )
        .unwrap();
    let ctx = ExecContext::new(catalog);
    // Q1 shape: shipdate cutoff predicate + a column subset projection, so
    // every page visit pays the (uncached) pruned decode — the real per-page
    // work the morsel jobs parallelize.
    let pred = Expr::col(5).le(Expr::lit(Value::Date(2400)));
    let projection = vec![1usize, 2, 3, 5];
    let columns = qpipe_core::scan::ScanRequest::referenced_columns(Some(&pred), Some(&projection));

    let mut g = c.benchmark_group("morsel_scan");
    for workers in [1usize, 2, 4, 8] {
        let mgr = ScanManager::new(
            ctx.clone(),
            ScanConfig { osp: true, startup_delay: std::time::Duration::ZERO, workers },
            metrics.clone(),
        );
        g.bench_with_input(BenchmarkId::from_parameter(workers), &mgr, |b, mgr| {
            b.iter(|| {
                let reg = Arc::new(WaitRegistry::new());
                let pipe =
                    Pipe::new(PipeConfig { capacity: 1024, backfill: 0 }, NodeId(1), reg.clone());
                let consumer = pipe.attach_consumer(NodeId(2), false);
                mgr.submit(ScanRequest {
                    table: "lineitem".into(),
                    predicate: Some(pred.clone()),
                    projection: Some(projection.clone()),
                    columns: columns.clone(),
                    output: pipe.producer(),
                    ordered: false,
                    split_ok: false,
                    probe: None,
                    trace: None,
                })
                .unwrap();
                let mut out = 0usize;
                while let Some(b) = consumer.recv().unwrap() {
                    out += b.len();
                }
                out
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = pool_policies, pipe_fanout, signature_and_lookup, exec_kernels, scan_filter,
        page_decode, hash_join_paths, agg_update_paths, sort_paths, filter_project_paths,
        morsel_scan
}
criterion_main!(benches);
