//! Shared helpers for the figure-reproduction binaries.
//!
//! Every binary in this crate regenerates one figure of the paper's
//! evaluation (§5); see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results.

use qpipe_common::QResult;
use qpipe_workloads::harness::{Driver, System, SystemProfile};
use qpipe_workloads::tpch::{build_tpch, TpchScale};
use qpipe_workloads::wisconsin::{build_wisconsin, WisconsinScale};

/// Default figure profile (see DESIGN.md §6).
pub fn profile() -> SystemProfile {
    SystemProfile::experiment()
}

/// Build a TPC-H driver at experiment scale for `system`.
pub fn tpch_driver(system: System) -> QResult<Driver> {
    Driver::build(system, profile(), |c| build_tpch(c, TpchScale::experiment(), 20050614))
}

/// Build a Wisconsin driver at experiment scale for `system`.
pub fn wisconsin_driver(system: System) -> QResult<Driver> {
    Driver::build(system, profile(), |c| build_wisconsin(c, WisconsinScale::experiment()))
}

/// Print a padded table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> =
        cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}", w = *w)).collect();
    println!("{}", line.join("  "));
}

/// Print a header + underline.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(), widths);
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// Format a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a count with thousands separators.
pub fn thousands(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1000), "1,000");
        assert_eq!(thousands(1234567), "1,234,567");
    }
}
