//! CI parallel-smoke: a long open-loop burst exercising the morsel-driven
//! worker pools — multi-worker µEngine pools, parallel scan morsels, and
//! parallel hash-build/aggregate partials — under a wall-clock bound.
//!
//! Run by the `parallel-smoke` CI job. Exits non-zero when the pool layer
//! misbehaves:
//!
//! * every arrival settles (completed + rejected = submitted),
//! * zero worker panics across the whole burst (fault-free run),
//! * the task pools actually ran morsels (`morsels_dispatched > 0`) and
//!   accumulated busy time,
//! * admission slots and memory leases return to baseline.
//!
//! Also prints the per-class p50/p99 response latency report the harness
//! now produces, so the job's log doubles as a quick latency regression
//! eyeball.

use qpipe_core::admit::AdmitConfig;
use qpipe_core::engine::QPipeConfig;
use qpipe_core::QueryClass;
use qpipe_exec::iter::ExecConfig;
use qpipe_workloads::harness::{open_loop, Driver, System, SystemProfile};
use qpipe_workloads::tpch::{build_tpch, query, TpchScale, MIX};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let queries = 480;
    let config = QPipeConfig {
        // Explicit 4-worker pools — including the CPU task pool — so the
        // morsel paths must engage regardless of the runner's core count.
        exec: ExecConfig { pool_workers: 4, task_workers: 4, ..ExecConfig::default() },
        admit: AdmitConfig { max_queued: 600, ..AdmitConfig::default() },
        ..QPipeConfig::default()
    };
    let profile = SystemProfile::instant();
    let driver = Driver::build_with_config(System::QPipeOsp, profile, config, |c| {
        build_tpch(c, TpchScale::tiny(), 1)
    })
    .expect("build driver");

    let mut rng = StdRng::seed_from_u64(0x9A7A11E1);
    let plans = (0..queries)
        .map(|i| {
            let class = if i % 4 == 0 { QueryClass::Batch } else { QueryClass::Interactive };
            (query(MIX[i % MIX.len()], &mut rng), class)
        })
        .collect();
    let r = open_loop(&driver, plans, 0.5, profile.time_scale);

    let engine = driver.engine().expect("staged driver");
    let gov = engine.governor();
    let admit = engine.admission();
    let mut failures = Vec::new();
    if r.completed + r.rejected != queries as u64 {
        failures.push(format!(
            "unsettled arrivals: completed {} + rejected {} != {queries}",
            r.completed, r.rejected
        ));
    }
    if r.completed == 0 {
        failures.push("no query completed".into());
    }
    if r.delta.worker_panics != 0 {
        failures.push(format!(
            "{} worker panic(s) caught during a fault-free run",
            r.delta.worker_panics
        ));
    }
    if r.delta.morsels_dispatched == 0 {
        failures.push("no morsels dispatched — parallel paths never engaged".into());
    }
    if r.delta.worker_busy_ns == 0 {
        failures.push("pool workers accumulated no busy time".into());
    }
    for (name, _) in admit.peaks() {
        if admit.in_flight(name) != 0 {
            failures.push(format!("µEngine {name} slots not returned to baseline"));
        }
    }
    for _ in 0..500 {
        if gov.in_use() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    if gov.in_use() != 0 {
        failures.push(format!("{} memory units still leased", gov.in_use()));
    }

    println!(
        "parallel-smoke: {} submitted, {} completed, {} rejected; \
         pool queue depth peak {}, {} morsels, {:.1} ms worker busy",
        queries,
        r.completed,
        r.rejected,
        r.delta.pool_queue_depth,
        r.delta.morsels_dispatched,
        r.delta.worker_busy_ns as f64 / 1e6,
    );
    for c in r.class_latencies() {
        println!(
            "  {:?}: {} completed, p50 {:.1}s / p95 {:.1}s / p99 {:.1}s (paper time)",
            c.class, c.completed, c.p50_paper_secs, c.p95_paper_secs, c.p99_paper_secs
        );
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("parallel-smoke: OK");
}
