//! §5 claim check: "When running QPipe with queries that present no sharing
//! opportunities, we found that the overhead of the OSP coordinator is
//! negligible."
//!
//! Each client scans a *different* table (Wisconsin BIG1 vs BIG2 vs SMALL
//! with disjoint predicates), so nothing can be shared; we compare total
//! completion time with OSP enabled vs disabled.

use qpipe_bench::{f1, print_header, print_row, profile, wisconsin_driver};
use qpipe_exec::expr::Expr;
use qpipe_exec::plan::{AggSpec, PlanNode};
use qpipe_workloads::harness::{staggered_run, System};

fn plans() -> Vec<PlanNode> {
    let agg = |p: PlanNode| p.aggregate(vec![], vec![AggSpec::count_star()]);
    vec![
        agg(PlanNode::scan_filtered("big1", Expr::col(4).lt(Expr::lit(50)))),
        agg(PlanNode::scan_filtered("big2", Expr::col(4).ge(Expr::lit(50)))),
        agg(PlanNode::scan_filtered("small", Expr::col(3).eq(Expr::lit(1)))),
        agg(PlanNode::scan_filtered("big1", Expr::col(4).ge(Expr::lit(50)))),
    ]
}

fn main() {
    let scale = profile().time_scale;
    println!("OSP coordinator overhead with zero sharing opportunity\n");
    let widths = [14, 14, 14];
    print_header(&["run", "OSP off (s)", "OSP on (s)"], &widths);
    let mut sums = [0.0f64; 2];
    for run in 0..5 {
        let mut totals = Vec::new();
        for system in [System::Baseline, System::QPipeOsp] {
            let driver = wisconsin_driver(system).expect("build driver");
            // Note: big1 appears twice with disjoint predicates — the scan
            // µEngine may still share the physical scan, which is the point:
            // coordinator *checks* cost nothing even when the answer is no.
            let r = staggered_run(&driver, plans(), 200.0, scale).expect("run");
            totals.push(r.total_paper_secs);
        }
        sums[0] += totals[0];
        sums[1] += totals[1];
        print_row(&[format!("{run}"), f1(totals[0]), f1(totals[1])], &widths);
    }
    let overhead = 100.0 * (sums[1] / sums[0] - 1.0);
    println!("\nmean OSP overhead: {overhead:+.1}% (paper: negligible)");
}
