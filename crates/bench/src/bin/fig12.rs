//! Figures 1b / 12: TPC-H throughput (queries per paper-hour) for 1–12
//! concurrent clients with zero think time, running a random mix of TPC-H
//! queries {1, 4, 6, 8, 12, 13, 14, 19} with qgen-randomized predicates, on
//! DBMS X vs Baseline vs QPipe w/OSP.
//!
//! Paper result: all three are disk-bound and equal at 1 client; beyond ~6
//! clients DBMS X saturates while QPipe w/OSP keeps scaling to ≈2x X;
//! Baseline trails X (X's buffer pool shares better than BerkeleyDB's LRU).

use qpipe_bench::{f1, print_header, print_row, profile, tpch_driver};
use qpipe_workloads::harness::{closed_loop, System};
use qpipe_workloads::tpch::{query, MIX};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = profile().time_scale;
    let duration_paper = 2400.0;
    println!("Figure 12: TPC-H mix throughput (queries/hour, paper time), zero think time\n");
    let widths = [8, 12, 12, 14];
    print_header(&["clients", "DBMS X", "Baseline", "QPipe w/OSP"], &widths);
    for clients in 1..=12usize {
        let mut qph = Vec::new();
        for system in [System::DbmsX, System::Baseline, System::QPipeOsp] {
            let driver = tpch_driver(system).expect("build driver");
            let r = closed_loop(
                &driver,
                &|client, iteration| {
                    let seed = (client as u64) * 1_000_003 + iteration * 7919;
                    let mut rng = StdRng::seed_from_u64(seed);
                    let q = MIX[(seed % MIX.len() as u64) as usize];
                    query(q, &mut rng)
                },
                clients,
                duration_paper,
                0.0,
                scale,
            );
            qph.push(r.qph);
        }
        print_row(&[clients.to_string(), f1(qph[0]), f1(qph[1]), f1(qph[2])], &widths);
    }
}
