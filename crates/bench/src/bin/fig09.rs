//! Figure 9: sharing order-sensitive clustered index scans. Two instances of
//! TPC-H Q4 implemented with a merge join over ordered scans of ORDERS and
//! LINEITEM, submitted at increasing intervals; total response time for
//! Baseline vs QPipe w/OSP.
//!
//! Paper result: although the ordered scans have spike overlap, the
//! merge-join's parent (an aggregate) is order-insensitive, so QPipe attaches
//! the second query's large scan to the one in progress and performs two
//! merge joins (re-reading the small side). The w/OSP curve stays well below
//! the Baseline until the interarrival exceeds the query duration.

use qpipe_bench::{f1, print_header, print_row, profile, tpch_driver};
use qpipe_workloads::harness::{staggered_run, System};
use qpipe_workloads::tpch::{q4, JoinFlavor};

fn main() {
    let scale = profile().time_scale;
    println!("Figure 9: total response time (paper s) — 2 x Q4 (merge-join plan)\n");
    let widths = [14, 12, 14, 12];
    print_header(&["interarrival_s", "Baseline", "QPipe w/OSP", "attaches"], &widths);
    for ia in [0.0, 20.0, 40.0, 60.0, 80.0, 100.0, 120.0, 140.0] {
        let mut totals = Vec::new();
        let mut attaches = 0;
        for system in [System::Baseline, System::QPipeOsp] {
            let driver = tpch_driver(system).expect("build driver");
            let plans = vec![q4(400, JoinFlavor::Merge), q4(700, JoinFlavor::Merge)];
            let r = staggered_run(&driver, plans, ia, scale).expect("run");
            if system == System::QPipeOsp {
                attaches = r.delta.osp_attaches;
            }
            totals.push(r.total_paper_secs);
        }
        print_row(
            &[format!("{ia:.0}"), f1(totals[0]), f1(totals[1]), attaches.to_string()],
            &widths,
        );
    }
}
