//! Figure 4: the Window-of-Opportunity taxonomy (4a) and the enhancement
//! functions (4b), printed as tables, with sampled savings curves.

use qpipe_bench::{print_header, print_row};
use qpipe_core::wop::{enhance, figure4a_inventory, savings, Enhancement, OverlapClass};

fn main() {
    println!("Figure 4a: operator overlap classification\n");
    let widths = [36, 26, 8];
    print_header(&["operation", "phase", "class"], &widths);
    for (op, phase, class) in figure4a_inventory() {
        print_row(&[op.to_string(), phase.to_string(), format!("{class:?}")], &widths);
    }

    println!("\nSavings for Q2 as a function of Q1 progress (Figure 4a curves):\n");
    let widths = [10, 9, 9, 9, 9];
    print_header(&["progress", "linear", "step*", "full", "spike"], &widths);
    for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let emitted = p > 0.3; // step's first output appears at 30% here
        print_row(
            &[
                format!("{:.0}%", p * 100.0),
                format!("{:.0}%", 100.0 * savings(OverlapClass::Linear, p, emitted)),
                format!("{:.0}%", 100.0 * savings(OverlapClass::Step, p, emitted)),
                format!("{:.0}%", 100.0 * savings(OverlapClass::Full, p, emitted)),
                format!("{:.0}%", 100.0 * savings(OverlapClass::Spike, p, emitted)),
            ],
            &widths,
        );
    }
    println!("(* step emits its first output tuple at 30% progress in this example)");

    println!("\nFigure 4b: enhancement functions\n");
    let widths = [8, 18, 18];
    print_header(&["class", "+buffering", "+materialization"], &widths);
    for class in [OverlapClass::Linear, OverlapClass::Step, OverlapClass::Full, OverlapClass::Spike]
    {
        print_row(
            &[
                format!("{class:?}"),
                format!("{:?}", enhance(class, Enhancement::Buffering)),
                format!("{:?}", enhance(class, Enhancement::Materialization)),
            ],
            &widths,
        );
    }
}
