//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Buffer-pool policy** under the Figure-8 workload (does the Baseline/
//!    DBMS-X gap really come from the replacement policy?).
//! 2. **Pipe capacity** (the buffering WoP enhancement: how much queue space
//!    does simultaneous pipelining need before the slowest-consumer coupling
//!    stops hurting?).
//! 3. **Circular scans on/off** (OSP with sharing restricted to stateful
//!    operators only — isolates how much of the win is scan sharing).

use qpipe_bench::{f1, print_header, print_row, profile, thousands};
use qpipe_common::{Metrics, QResult};
use qpipe_core::engine::{QPipe, QPipeConfig};
use qpipe_core::pipe::PipeConfig;
use qpipe_storage::{BufferPool, BufferPoolConfig, Catalog, PolicyKind, SimDisk};
use qpipe_workloads::harness::{staggered_run, Driver, System, SystemProfile};
use qpipe_workloads::tpch::{build_tpch, q4, q6, JoinFlavor, TpchScale};

fn pool_policy_ablation() -> QResult<()> {
    println!("Ablation 1: buffer-pool replacement policy, Baseline engine,");
    println!("4 clients x Q6 at 30s interarrival (Figure 8 workload)\n");
    let prof = profile();
    let widths = [10, 14, 12];
    print_header(&["policy", "blocks read", "hit ratio"], &widths);
    for policy in
        [PolicyKind::Lru, PolicyKind::Clock, PolicyKind::LruK(2), PolicyKind::TwoQ, PolicyKind::Arc]
    {
        let custom = SystemProfile { policy, ..prof };
        let driver = Driver::build(System::Baseline, custom, |c| {
            build_tpch(c, TpchScale::experiment(), 20050614)
        })?;
        let plans: Vec<_> =
            (0..4).map(|c| q6((c * 137) % 1800, 0.02 + 0.01 * c as f64, 30 + c as i64)).collect();
        let r = staggered_run(&driver, plans, 30.0, custom.time_scale)?;
        print_row(
            &[
                format!("{policy:?}"),
                thousands(r.delta.disk_blocks_read),
                format!("{:.2}", r.delta.bp_hit_ratio()),
            ],
            &widths,
        );
    }
    println!();
    Ok(())
}

fn pipe_capacity_ablation() -> QResult<()> {
    println!("Ablation 2: intermediate-buffer capacity (batches/consumer),");
    println!("2 x Q4 hash-join plan at 20s interarrival, QPipe w/OSP\n");
    let prof = profile();
    let widths = [10, 16, 10];
    print_header(&["capacity", "total time (s)", "attaches"], &widths);
    for capacity in [1usize, 2, 4, 8, 16, 64] {
        let metrics = Metrics::new();
        let disk = SimDisk::new(prof.disk, metrics.clone());
        let pool =
            BufferPool::new(disk.clone(), BufferPoolConfig::new(prof.pool_pages, prof.policy));
        let catalog = Catalog::new(disk, pool);
        build_tpch(&catalog, TpchScale::experiment(), 20050614)?;
        let config = QPipeConfig {
            pipe: PipeConfig { capacity, backfill: capacity },
            host_backfill: capacity,
            ..QPipeConfig::default()
        };
        let engine = QPipe::new(catalog, config);
        let before = metrics.snapshot();
        let start = std::time::Instant::now();
        let h1 = engine.submit(q4(400, JoinFlavor::Hash))?;
        let e2 = engine.clone();
        let t2 = std::thread::spawn(move || {
            std::thread::sleep(prof.time_scale.to_real(20.0));
            e2.submit(q4(400, JoinFlavor::Hash)).map(|h| h.collect().len())
        });
        h1.collect();
        t2.join().expect("client thread")?;
        let total = prof.time_scale.to_paper(start.elapsed());
        let delta = metrics.snapshot().delta_since(&before);
        print_row(&[capacity.to_string(), f1(total), delta.osp_attaches.to_string()], &widths);
    }
    println!();
    Ok(())
}

fn scan_sharing_ablation() -> QResult<()> {
    println!("Ablation 3: contribution of circular-scan sharing,");
    println!("4 clients x Q6 at 20s interarrival\n");
    let prof = profile();
    let widths = [26, 14, 16];
    print_header(&["configuration", "blocks read", "total time (s)"], &widths);
    for (label, system) in
        [("Baseline (no sharing)", System::Baseline), ("QPipe w/OSP", System::QPipeOsp)]
    {
        let driver =
            Driver::build(system, prof, |c| build_tpch(c, TpchScale::experiment(), 20050614))?;
        let plans: Vec<_> =
            (0..4).map(|c| q6((c * 137) % 1800, 0.02 + 0.01 * c as f64, 30 + c as i64)).collect();
        let r = staggered_run(&driver, plans, 20.0, prof.time_scale)?;
        print_row(
            &[label.to_string(), thousands(r.delta.disk_blocks_read), f1(r.total_paper_secs)],
            &widths,
        );
    }
    println!("(Q6 is scan-only, so the Baseline→OSP delta here *is* the circular-scan win;");
    println!(" stateful-operator sharing is isolated by fig10/fig11.)");
    Ok(())
}

fn main() -> QResult<()> {
    pool_policy_ablation()?;
    pipe_capacity_ablation()?;
    scan_sharing_ablation()
}
