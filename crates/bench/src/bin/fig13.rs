//! Figure 13: average response time for the TPC-H mix with 10 concurrent
//! clients, varying per-client think time (0–240 paper seconds), for the
//! Baseline vs QPipe w/OSP.
//!
//! Paper result: QPipe w/OSP achieves its throughput gains *without*
//! sacrificing response time — its average response time stays below the
//! Baseline at every load level (low think time = high load).

use qpipe_bench::{f1, print_header, print_row, profile, tpch_driver};
use qpipe_workloads::harness::{closed_loop, System};
use qpipe_workloads::tpch::{query, MIX};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = profile().time_scale;
    let duration_paper = 2400.0;
    let clients = 10;
    println!("Figure 13: average response time (paper s), 10 clients, varying think time\n");
    let widths = [12, 12, 14];
    print_header(&["think_s", "Baseline", "QPipe w/OSP"], &widths);
    for think in [0.0, 20.0, 40.0, 60.0, 120.0, 240.0] {
        let mut avg = Vec::new();
        for system in [System::Baseline, System::QPipeOsp] {
            let driver = tpch_driver(system).expect("build driver");
            let r = closed_loop(
                &driver,
                &|client, iteration| {
                    let seed = (client as u64) * 1_000_003 + iteration * 7919;
                    let mut rng = StdRng::seed_from_u64(seed);
                    let q = MIX[(seed % MIX.len() as u64) as usize];
                    query(q, &mut rng)
                },
                clients,
                duration_paper,
                think,
                scale,
            );
            avg.push(r.avg_response_paper_secs);
        }
        print_row(&[format!("{think:.0}"), f1(avg[0]), f1(avg[1])], &widths);
    }
}
