//! CI chaos-smoke: a fixed-seed fault schedule replayed under a
//! multi-client open-loop burst against a small TPC-H catalog.
//!
//! Run by the `chaos-smoke` CI job under a wall-clock bound (`timeout`).
//! Exits non-zero when the failure-containment contract breaks:
//!
//! * every arrival settles — completed, rejected, or cleanly failed,
//! * transient I/O faults heal through the buffer-pool retry path
//!   (`io_retries > 0`) without failing their queries,
//! * single-bit corruption is caught by page checksums (`QError::Storage`,
//!   never silent garbage),
//! * an injected operator panic is contained (caught exactly once, its
//!   queries failed, the engine keeps serving),
//! * admission slots, governor leases, and spill temp files return to
//!   baseline after the burst drains.

use qpipe_common::{FaultKind, FaultOp, FaultRule, QError};
use qpipe_core::engine::QPipeConfig;
use qpipe_core::QueryClass;
use qpipe_exec::iter::ExecConfig;
use qpipe_workloads::chaos::{run_chaos, ChaosConfig};
use qpipe_workloads::harness::{Driver, OpenLoopOutcome, System, SystemProfile};
use qpipe_workloads::tpch::{build_tpch, q13, q6, TpchScale};

fn main() {
    let driver = Driver::build_with_config(
        System::QPipeOsp,
        SystemProfile::instant(),
        QPipeConfig {
            exec: ExecConfig { tracing: true, ..ExecConfig::default() },
            ..QPipeConfig::default()
        },
        |c| build_tpch(c, TpchScale::tiny(), 42),
    )
    .expect("build driver");

    // The fixed schedule: transient read faults on the first lineitem blocks
    // (heal within the retry budget), permanent corruption of an orders
    // block (checksum-detected), and exactly one injected panic.
    let rules = vec![
        FaultRule::new(FaultKind::Transient)
            .on_file("lineitem")
            .on_blocks(0..3)
            .on_op(FaultOp::Read)
            .times(2),
        FaultRule::new(FaultKind::Corrupt)
            .on_file("orders")
            .on_blocks(0..1)
            .on_op(FaultOp::Read)
            .times(u32::MAX),
        FaultRule::new(FaultKind::Panic)
            .on_file("lineitem")
            .on_blocks(4..5)
            .on_op(FaultOp::Read)
            .times(1),
    ];
    let config = ChaosConfig { interarrival_paper: 300.0, ..ChaosConfig::new(0xC4A05, rules) };
    let n = 24;
    let plans: Vec<_> = (0..n)
        .map(|i| {
            let class = if i % 4 == 0 { QueryClass::Batch } else { QueryClass::Interactive };
            // Every sixth query scans the corrupted table; the rest scan
            // lineitem and ride through the transient/panic schedule.
            let plan = if i % 6 == 5 { q13() } else { q6((i % 5) as i32 * 100, 0.05, 30) };
            (plan, class)
        })
        .collect();
    let report = run_chaos(&driver, plans, &config);

    let mut failures = Vec::new();
    if report.result.outcomes.len() != n {
        failures.push(format!("unsettled arrivals: {:?}", report.result.outcomes));
    }
    if report.faults_injected == 0 {
        failures.push("schedule injected nothing — smoke is vacuous".into());
    }
    if report.result.delta.io_retries == 0 {
        failures.push("transient faults never exercised the retry path".into());
    }
    if report.result.delta.checksum_failures == 0 {
        failures.push("corruption was never detected by a checksum".into());
    }
    if report.result.delta.worker_panics != 1 {
        failures.push(format!(
            "expected exactly 1 contained panic, saw {}",
            report.result.delta.worker_panics
        ));
    }
    if report.completed() == 0 {
        failures.push("no query completed under the schedule".into());
    }
    // Corruption must surface as a checksum/storage error on the affected
    // queries, never as silently wrong rows.
    let bad_failures: Vec<_> = report
        .result
        .outcomes
        .iter()
        .filter_map(|o| match o {
            OpenLoopOutcome::Failed(e)
                if !matches!(e, QError::Storage(_) | QError::Exec(_) | QError::Timeout) =>
            {
                Some(format!("{e:?}"))
            }
            _ => None,
        })
        .collect();
    if !bad_failures.is_empty() {
        failures.push(format!("unexpected failure kinds: {bad_failures:?}"));
    }
    if !report.leaked_tmp_files.is_empty() {
        failures.push(format!("temp files leaked: {:?}", report.leaked_tmp_files));
    }
    if report.governor_in_use != 0 {
        failures.push(format!("{} memory units still leased", report.governor_in_use));
    }
    if !report.busy_engines.is_empty() {
        failures.push(format!("admission slots leaked: {:?}", report.busy_engines));
    }

    println!(
        "chaos-smoke: {n} submitted, {} completed, {} failed, {} rejected; \
         {} faults injected, {} retries, {} checksum rejections, {} contained panic(s)",
        report.completed(),
        report.failed(),
        report.result.rejected,
        report.faults_injected,
        report.result.delta.io_retries,
        report.result.delta.checksum_failures,
        report.result.delta.worker_panics,
    );
    for c in report.result.class_latencies() {
        println!(
            "  {:?}: {} completed, p50 {:.1}s / p95 {:.1}s / p99 {:.1}s (paper time)",
            c.class, c.completed, c.p50_paper_secs, c.p95_paper_secs, c.p99_paper_secs
        );
    }
    // Wiring regression guard: a recorded histogram whose percentiles read
    // zero means a record site went dead or the snapshot plumbing broke.
    for (name, h) in driver.metrics().snapshot().histograms() {
        if h.count > 0 && (h.p50 == 0 || h.p95 == 0 || h.p99 == 0) {
            failures.push(format!(
                "histogram {name} has count {} but a zero percentile (p50 {} p95 {} p99 {})",
                h.count, h.p50, h.p95, h.p99
            ));
        }
    }
    println!("--- metrics ---");
    print!("{}", driver.metrics().render_text());
    // Failed queries are expected here (that's the point of the schedule);
    // their journals are the post-mortem artifact this smoke exists to prove.
    for journal in &report.result.failed_journals {
        println!("--- failed-query journal ---\n{journal}");
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("chaos-smoke: OK");
}
