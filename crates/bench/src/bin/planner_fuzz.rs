//! CI planner-fuzz-smoke: seeded random SQL against the front end.
//!
//! Run by the `planner-fuzz-smoke` CI job under a wall-clock bound
//! (`timeout`). Two passes, both fully deterministic in the seed:
//!
//! * **Structured pass** — random TPC-H-shaped queries with random
//!   parameters. Each must plan `Ok`; two independently shuffled phrasings
//!   must land on the canonical plan's signature; a sample executes and the
//!   phrasings must agree on row count.
//! * **Mutation pass** — canonical query text mangled byte-wise (truncated,
//!   spliced, overwritten). Each mutant must yield `Ok` or a clean
//!   `Err` — never a panic (`catch_unwind` holds the line).
//!
//! Exits non-zero on any violation.

use qpipe_common::Metrics;
use qpipe_exec::iter::{run as exec_run, ExecContext};
use qpipe_planner::{plan_sql, PlannerOptions};
use qpipe_storage::{BufferPool, BufferPoolConfig, Catalog, DiskConfig, PolicyKind, SimDisk};
use qpipe_workloads::sql::{self, SqlQuery};
use qpipe_workloads::tpch::{build_tpch, TpchScale, BRANDS, DATE_MAX, NATIONS, REGIONS, SHIPMODES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

const SEED: u64 = 0xF0_22;
const STRUCTURED: usize = 250;
const EXEC_EVERY: usize = 10;
const MUTANTS: usize = 600;

fn random_shape(rng: &mut StdRng) -> SqlQuery {
    match rng.gen_range(0..8u32) {
        0 => sql::q1_sql(rng.gen_range(60..=120)),
        1 => sql::q3_sql(rng.gen_range(0..NATIONS.len() as i64), rng.gen_range(200..=DATE_MAX)),
        2 => sql::q4_sql(rng.gen_range(0..=DATE_MAX - 90)),
        3 => {
            sql::q5_sql(REGIONS[rng.gen_range(0..REGIONS.len())], rng.gen_range(0..=DATE_MAX - 365))
        }
        4 => sql::q6_sql(
            rng.gen_range(0..=DATE_MAX - 365),
            (rng.gen_range(2..=9) as f64) / 100.0,
            rng.gen_range(24..=50),
        ),
        5 => sql::q10_sql(rng.gen_range(0..=DATE_MAX - 90)),
        6 => sql::q12_sql(
            SHIPMODES[rng.gen_range(0..SHIPMODES.len())],
            SHIPMODES[rng.gen_range(0..SHIPMODES.len())],
            rng.gen_range(0..=DATE_MAX - 365),
        ),
        _ => sql::q19_sql(
            BRANDS[rng.gen_range(0..BRANDS.len())],
            BRANDS[rng.gen_range(0..BRANDS.len())],
            rng.gen_range(1..=20),
        ),
    }
}

/// Byte-level mutations over ASCII query text (our generators emit ASCII
/// only, so the mutants stay valid UTF-8).
fn mutate(text: &str, rng: &mut StdRng) -> String {
    let mut bytes = text.as_bytes().to_vec();
    let garbage = b"()'%,.<>=*;#\0 SELECTFROMWHEREANDORIN0123456789";
    for _ in 0..rng.gen_range(1..=4usize) {
        if bytes.is_empty() {
            break;
        }
        match rng.gen_range(0..4u32) {
            // Truncate.
            0 => bytes.truncate(rng.gen_range(0..bytes.len())),
            // Delete a span.
            1 => {
                let at = rng.gen_range(0..bytes.len());
                let len = rng.gen_range(1..=8.min(bytes.len() - at));
                bytes.drain(at..at + len);
            }
            // Overwrite one byte.
            2 => {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = garbage[rng.gen_range(0..garbage.len())];
            }
            // Duplicate a span somewhere else.
            _ => {
                let at = rng.gen_range(0..bytes.len());
                let len = rng.gen_range(1..=8.min(bytes.len() - at));
                let span: Vec<u8> = bytes[at..at + len].to_vec();
                let dst = rng.gen_range(0..=bytes.len());
                bytes.splice(dst..dst, span);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn main() {
    let disk = SimDisk::new(DiskConfig::instant(), Metrics::new());
    let pool = BufferPool::new(disk.clone(), BufferPoolConfig::new(512, PolicyKind::Lru));
    let catalog = Catalog::new(disk, pool);
    build_tpch(&catalog, TpchScale::tiny(), 42).expect("load tpch");
    let ctx = ExecContext::new(catalog.clone());
    let opts = PlannerOptions::default();
    let mut rng = StdRng::seed_from_u64(SEED);

    // Structured pass.
    let mut executed = 0usize;
    for i in 0..STRUCTURED {
        let shape = random_shape(&mut rng);
        let canon_text = shape.canonical();
        let canon = plan_sql(catalog.as_ref(), &canon_text, &opts)
            .unwrap_or_else(|e| panic!("canonical text must plan: {canon_text}: {e}"));
        let mut rows_expected: Option<usize> = None;
        if i % EXEC_EVERY == 0 {
            let rows = exec_run(&canon.plan, &ctx)
                .unwrap_or_else(|e| panic!("canonical plan must execute: {canon_text}: {e}"));
            rows_expected = Some(rows.len());
            executed += 1;
        }
        for _ in 0..2 {
            let variant = shape.shuffled(&mut rng);
            let vp = plan_sql(catalog.as_ref(), &variant, &opts)
                .unwrap_or_else(|e| panic!("shuffled text must plan: {variant}: {e}"));
            assert_eq!(
                vp.signature, canon.signature,
                "phrasings must share a signature:\n  {canon_text}\n  {variant}"
            );
            if let Some(expected) = rows_expected {
                let rows = exec_run(&vp.plan, &ctx)
                    .unwrap_or_else(|e| panic!("shuffled plan must execute: {variant}: {e}"));
                assert_eq!(rows.len(), expected, "row count diverged: {variant}");
                executed += 1;
            }
        }
    }

    // Mutation pass: Ok or Err, never a panic.
    let mut planned_ok = 0usize;
    for _ in 0..MUTANTS {
        let mutant = mutate(&random_shape(&mut rng).canonical(), &mut rng);
        let catalog = Arc::clone(&catalog);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            plan_sql(catalog.as_ref(), &mutant, &opts).map(|p| p.signature)
        }));
        match outcome {
            Ok(Ok(_)) => planned_ok += 1,
            Ok(Err(_)) => {}
            Err(_) => {
                eprintln!("FAIL: planner panicked on mutant: {mutant:?}");
                std::process::exit(1);
            }
        }
    }

    println!(
        "planner fuzz OK: {STRUCTURED} structured shapes ({} executions), \
         {MUTANTS} mutants ({planned_ok} still planned clean)",
        executed
    );
}
