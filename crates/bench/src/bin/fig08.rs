//! Figure 8: total disk blocks read for 2/4/8 concurrent clients running
//! TPC-H Query 6, varying interarrival time (0–100 paper seconds), for
//! Baseline vs QPipe w/OSP.
//!
//! Paper result: the Baseline only shares via buffer-pool timing, so blocks
//! read grow with interarrival time and plateau at clients × table size;
//! QPipe w/OSP keeps the curve near one table read until the interarrival
//! time exceeds a single scan's duration. At 20 s interarrival the paper
//! saves up to 63% of I/O.

use qpipe_bench::{print_header, print_row, profile, thousands, tpch_driver};
use qpipe_workloads::harness::{staggered_run, System};
use qpipe_workloads::tpch::q6;

fn main() {
    let scale = profile().time_scale;
    let interarrivals = [0.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0];
    println!("Figure 8: total disk blocks read — TPC-H Q6, varying interarrival time\n");
    for clients in [2usize, 4, 8] {
        println!("== {clients} clients ==");
        let widths = [14, 16, 16, 10];
        print_header(&["interarrival_s", "Baseline", "QPipe w/OSP", "saved_%"], &widths);
        for ia in interarrivals {
            let mut blocks = Vec::new();
            for system in [System::Baseline, System::QPipeOsp] {
                let driver = tpch_driver(system).expect("build driver");
                // Distinct qgen-style predicates per client (same table).
                let plans: Vec<_> = (0..clients)
                    .map(|c| q6((c as i32 * 137) % 1800, 0.02 + 0.01 * c as f64, 30 + c as i64))
                    .collect();
                let r = staggered_run(&driver, plans, ia, scale).expect("run");
                blocks.push(r.delta.disk_blocks_read);
            }
            let saved = 100.0 * (1.0 - blocks[1] as f64 / blocks[0].max(1) as f64);
            print_row(
                &[
                    format!("{ia:.0}"),
                    thousands(blocks[0]),
                    thousands(blocks[1]),
                    format!("{saved:.0}"),
                ],
                &widths,
            );
        }
        println!();
    }
}
