//! Figure 10: reusing computation in sort-merge joins. Two similar Wisconsin
//! 3-way join queries (same BIG1/BIG2 predicates, different SMALL predicate)
//! submitted at increasing intervals; total response time for Baseline vs
//! QPipe w/OSP.
//!
//! Paper result: sort is a full + linear overlap, so QPipe shares the BIG1/
//! BIG2 sorts (and the merge phase when the second query arrives before the
//! first output) for most of the query lifetime — the w/OSP curve stays flat
//! for a long interval, yielding ≈2x speedup.

use qpipe_bench::{f1, print_header, print_row, profile, wisconsin_driver};
use qpipe_workloads::harness::{staggered_run, System};
use qpipe_workloads::wisconsin::three_way_join;

fn main() {
    let scale = profile().time_scale;
    println!("Figure 10: total response time (paper s) — 2 x Wisconsin 3-way sort-merge join\n");
    let widths = [14, 12, 14, 12];
    print_header(&["interarrival_s", "Baseline", "QPipe w/OSP", "attaches"], &widths);
    for ia in [0.0, 20.0, 40.0, 60.0, 80.0, 100.0, 120.0, 140.0] {
        let mut totals = Vec::new();
        let mut attaches = 0;
        for system in [System::Baseline, System::QPipeOsp] {
            let driver = wisconsin_driver(system).expect("build driver");
            // Same big predicates, different small predicate (paper setup).
            let plans = vec![three_way_join(0, 3), three_way_join(0, 7)];
            let r = staggered_run(&driver, plans, ia, scale).expect("run");
            if system == System::QPipeOsp {
                attaches = r.delta.osp_attaches;
            }
            totals.push(r.total_paper_secs);
        }
        print_row(
            &[format!("{ia:.0}"), f1(totals[0]), f1(totals[1]), attaches.to_string()],
            &widths,
        );
    }
}
