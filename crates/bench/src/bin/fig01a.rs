//! Figure 1a: time breakdown for five representative TPC-H queries (Q8, Q12,
//! Q13, Q14, Q19) with respect to the tables they read during execution, on
//! the conventional engine (DBMS X stand-in).
//!
//! I/O dominates at the paper's scale, so the per-table share of disk blocks
//! read is the per-table share of execution time. Paper takeaway: although
//! the queries compute different things, they all spend most of their time
//! reading the same few tables (LINEITEM, ORDERS, PART) — the sharing
//! opportunity QPipe exploits.

use qpipe_bench::{print_header, print_row, tpch_driver};
use qpipe_workloads::harness::System;
use qpipe_workloads::tpch::{q12, q13, q14, q19, q8};

fn main() {
    println!("Figure 1a: normalized time breakdown by table read (conventional engine)\n");
    let queries: Vec<(&str, qpipe_exec::plan::PlanNode)> = vec![
        ("Q8", q8(2, "ECONOMY ANODIZED STEEL")),
        ("Q12", q12("RAIL", "SHIP", 400)),
        ("Q13", q13()),
        ("Q14", q14(600)),
        ("Q19", q19("Brand#23", "Brand#34", 5)),
    ];
    let widths = [6, 10, 10, 8, 8, 10];
    print_header(&["query", "lineitem", "orders", "part", "other", "blocks"], &widths);
    for (name, plan) in queries {
        let driver = tpch_driver(System::DbmsX).expect("build driver");
        let before = driver.metrics().snapshot();
        driver.run(plan).expect("query");
        let delta = driver.metrics().snapshot().delta_since(&before);
        let total = delta.disk_blocks_read.max(1) as f64;
        let get = |t: &str| delta.per_file_reads.get(t).copied().unwrap_or(0) as f64;
        let (li, or, pa) = (get("lineitem"), get("orders"), get("part"));
        let other = (total - li - or - pa).max(0.0);
        print_row(
            &[
                name.to_string(),
                format!("{:.0}%", 100.0 * li / total),
                format!("{:.0}%", 100.0 * or / total),
                format!("{:.0}%", 100.0 * pa / total),
                format!("{:.0}%", 100.0 * other / total),
                format!("{}", delta.disk_blocks_read),
            ],
            &widths,
        );
    }
}
