//! Figure 11: sharing the build phase of a hash join. Two instances of
//! TPC-H Q4 implemented with a hybrid hash join, submitted at increasing
//! intervals; total response time for Baseline vs QPipe w/OSP.
//!
//! Paper result: the build phase is a full overlap, so while the first
//! query is still building (or before the probe emits its first tuples) the
//! second query shares the entire join; after that window closes it still
//! shares the in-progress LINEITEM scan, so w/OSP stays below Baseline until
//! the curves converge past the query duration.

use qpipe_bench::{f1, print_header, print_row, profile, tpch_driver};
use qpipe_workloads::harness::{staggered_run, System};
use qpipe_workloads::tpch::{q4, JoinFlavor};

fn main() {
    let scale = profile().time_scale;
    println!("Figure 11: total response time (paper s) — 2 x Q4 (hash-join plan)\n");
    let widths = [14, 12, 14, 12];
    print_header(&["interarrival_s", "Baseline", "QPipe w/OSP", "attaches"], &widths);
    for ia in [0.0, 20.0, 40.0, 60.0, 80.0, 100.0, 120.0, 140.0] {
        let mut totals = Vec::new();
        let mut attaches = 0;
        for system in [System::Baseline, System::QPipeOsp] {
            let driver = tpch_driver(system).expect("build driver");
            let plans = vec![q4(400, JoinFlavor::Hash), q4(400, JoinFlavor::Hash)];
            let r = staggered_run(&driver, plans, ia, scale).expect("run");
            if system == System::QPipeOsp {
                attaches = r.delta.osp_attaches;
            }
            totals.push(r.total_paper_secs);
        }
        print_row(
            &[format!("{ia:.0}"), f1(totals[0]), f1(totals[1]), attaches.to_string()],
            &widths,
        );
    }
}
