//! CI stress-smoke: an open-loop multi-client burst against a small TPC-H
//! catalog under a deliberately tight admission + memory configuration.
//!
//! Run by the `stress-smoke` CI job under a wall-clock bound (`timeout`).
//! Exits non-zero when any oversubscription invariant breaks:
//!
//! * every arrival settles (completed + rejected = submitted),
//! * no µEngine ever runs more than `queue_depth` queries concurrently,
//! * governor-granted memory never exceeds the global budget,
//! * all admission slots and memory leases return to baseline.

use qpipe_core::admit::AdmitConfig;
use qpipe_core::engine::QPipeConfig;
use qpipe_core::QueryClass;
use qpipe_exec::iter::ExecConfig;
use qpipe_workloads::harness::{open_loop, Driver, System, SystemProfile};
use qpipe_workloads::tpch::{build_tpch, query, TpchScale, MIX};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let depth = 3;
    let global_mem = 16 * 1024;
    let queries = 48;
    let config = QPipeConfig {
        exec: ExecConfig {
            sort_budget: 2048,
            hash_budget: 2048,
            global_budget: global_mem,
            tracing: true,
            ..ExecConfig::default()
        },
        admit: AdmitConfig { queue_depth: depth, max_queued: 40, ..AdmitConfig::default() },
        ..QPipeConfig::default()
    };
    let profile = SystemProfile::instant();
    let driver = Driver::build_with_config(System::QPipeOsp, profile, config, |c| {
        build_tpch(c, TpchScale::tiny(), 1)
    })
    .expect("build driver");

    let mut rng = StdRng::seed_from_u64(0x57E55);
    let plans = (0..queries)
        .map(|i| {
            let class = if i % 4 == 0 { QueryClass::Batch } else { QueryClass::Interactive };
            (query(MIX[i % MIX.len()], &mut rng), class)
        })
        .collect();
    let r = open_loop(&driver, plans, 2.0, profile.time_scale);

    let engine = driver.engine().expect("staged driver");
    let gov = engine.governor();
    let admit = engine.admission();
    let mut failures = Vec::new();
    if r.completed + r.rejected != queries as u64 {
        failures.push(format!(
            "unsettled arrivals: completed {} + rejected {} != {queries} ({:?})",
            r.completed, r.rejected, r.outcomes
        ));
    }
    if r.completed == 0 {
        failures.push("no query completed".into());
    }
    for (name, peak) in admit.peaks() {
        if peak > depth {
            failures.push(format!("µEngine {name} ran {peak} > depth {depth} concurrently"));
        }
        if admit.in_flight(name) != 0 {
            failures.push(format!("µEngine {name} slots not returned to baseline"));
        }
    }
    if admit.queue_len() != 0 {
        failures.push(format!("{} tickets left waiting", admit.queue_len()));
    }
    // Worker threads may outlive result delivery briefly.
    for _ in 0..500 {
        if gov.in_use() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    if gov.in_use() != 0 {
        failures.push(format!("{} memory units still leased", gov.in_use()));
    }
    if gov.peak() > global_mem as u64 {
        failures
            .push(format!("granted memory peaked at {} > global budget {global_mem}", gov.peak()));
    }
    // No faults are injected here, so any caught panic is a genuine operator
    // bug that containment masked into a query failure — fail loudly.
    if r.delta.worker_panics != 0 {
        failures.push(format!(
            "{} worker panic(s) caught during a fault-free run",
            r.delta.worker_panics
        ));
    }

    println!(
        "stress-smoke: {} submitted, {} completed, {} rejected, {} queued; \
         governor peak {}/{} units, {} grants denied",
        queries,
        r.completed,
        r.rejected,
        r.delta.queued,
        gov.peak(),
        global_mem,
        r.delta.mem_waited,
    );
    let mut peaks: Vec<_> = admit.peaks().into_iter().collect();
    peaks.sort();
    for (name, peak) in peaks {
        println!("  µEngine {name:>10}: peak {peak}/{depth} concurrent queries");
    }
    println!(
        "  pools: queue depth peak {}, {} morsels dispatched, {:.1} ms worker busy",
        r.delta.pool_queue_depth,
        r.delta.morsels_dispatched,
        r.delta.worker_busy_ns as f64 / 1e6,
    );
    let mut busy: Vec<_> = r.delta.per_engine_busy_ns.iter().collect();
    busy.sort();
    for (name, ns) in busy {
        println!("  pool {name:>10}: {:.1} ms busy", *ns as f64 / 1e6);
    }
    for c in r.class_latencies() {
        println!(
            "  {:?}: {} completed, p50 {:.1}s / p95 {:.1}s / p99 {:.1}s (paper time)",
            c.class, c.completed, c.p50_paper_secs, c.p95_paper_secs, c.p99_paper_secs
        );
    }
    // Wiring regression guard: a recorded histogram whose percentiles read
    // zero means a record site went dead or the snapshot plumbing broke.
    for (name, h) in driver.metrics().snapshot().histograms() {
        if h.count > 0 && (h.p50 == 0 || h.p95 == 0 || h.p99 == 0) {
            failures.push(format!(
                "histogram {name} has count {} but a zero percentile (p50 {} p95 {} p99 {})",
                h.count, h.p50, h.p95, h.p99
            ));
        }
    }
    println!("--- metrics ---");
    print!("{}", driver.metrics().render_text());
    for journal in &r.failed_journals {
        eprintln!("--- failed-query journal ---\n{journal}");
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("stress-smoke: OK");
}
