//! # qpipe — umbrella crate
//!
//! Rust reproduction of *QPipe: A Simultaneously Pipelined Relational Query
//! Engine* (Harizopoulos, Ailamaki, Shkapenyuk — SIGMOD 2005).
//!
//! This crate re-exports the workspace members under one roof and provides a
//! [`prelude`] plus a [`quick_system`] helper for getting an engine running
//! in a few lines. See the `examples/` directory for runnable walkthroughs
//! and `crates/bench` for the per-figure reproduction harnesses.
//!
//! ## Layered architecture
//!
//! * [`common`] — values, schemas, tuples, metrics, simulated time.
//! * [`storage`] — simulated disk, pages, heap files, buffer pool (LRU /
//!   Clock / LRU-K / 2Q / ARC), bulk-loaded indexes, catalog, table locks.
//! * [`exec`] — the conventional one-query-many-operators iterator engine
//!   (also the per-packet kernels inside µEngines).
//! * [`planner`] — SQL-ish front end and statistics-free greedy planner
//!   that canonicalizes plans so equivalent phrasings share signatures.
//! * [`core`] — the QPipe engine: µEngines, packets, pipes, OSP, circular
//!   scans, deadlock detection.
//! * [`workloads`] — TPC-H-style + Wisconsin generators, query plans, and
//!   the multi-client experiment harness.

pub use qpipe_common as common;
pub use qpipe_core as core;
pub use qpipe_exec as exec;
pub use qpipe_planner as planner;
pub use qpipe_storage as storage;
pub use qpipe_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use qpipe_common::{
        sim::TimeScale, Batch, DataType, FaultInjector, FaultKind, FaultOp, FaultRule,
        MemoryGovernor, Metrics, QError, QResult, Schema, Tuple, Value,
    };
    pub use qpipe_core::admit::{AdmitConfig, QueryClass};
    pub use qpipe_core::engine::{QPipe, QPipeConfig, QueryHandle};
    pub use qpipe_exec::expr::Expr;
    pub use qpipe_exec::iter::{ExecConfig, ExecContext};
    pub use qpipe_exec::plan::{AggSpec, PlanNode, SortKey};
    pub use qpipe_planner::{plan_sql, PlannedQuery, PlannerOptions};
    pub use qpipe_storage::{
        BufferPool, BufferPoolConfig, Catalog, DiskConfig, PolicyKind, SimDisk,
    };
}

use prelude::*;
use std::sync::Arc;

/// Build a ready-to-use storage stack: simulated disk (instant by default),
/// buffer pool, and catalog.
pub fn quick_system(disk_config: DiskConfig, pool_pages: usize) -> Arc<Catalog> {
    let disk = SimDisk::new(disk_config, Metrics::new());
    let pool = BufferPool::new(disk.clone(), BufferPoolConfig::new(pool_pages, PolicyKind::Lru));
    Catalog::new(disk, pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_system_boots_an_engine() {
        let catalog = quick_system(DiskConfig::instant(), 64);
        catalog
            .create_table(
                "t",
                Schema::of(&[("k", DataType::Int)]),
                (0..100).map(|i| vec![Value::Int(i)]).collect(),
                None,
            )
            .unwrap();
        let engine = QPipe::new(catalog, QPipeConfig::default());
        let rows = engine
            .submit(PlanNode::scan("t").aggregate(vec![], vec![AggSpec::count_star()]))
            .unwrap()
            .collect();
        assert_eq!(rows[0][0], Value::Int(100));
    }
}
